//! Multi-core execution: an Ascend-910-like chip with up to 32 AI Cores.
//!
//! "If multiple AI Cores are available, multiple tiles can be processed in
//! parallel" (paper, Section V-A) — the lowering layer partitions work
//! (over `C1`, row bands, or batch elements) into one program per tile and
//! the chip executes them round-robin over its cores, each core running
//! its share sequentially. The reported cycle count is the maximum over
//! cores, plus a per-tile dispatch charge and — under
//! [`MemoryModel::SharedBandwidth`] — the extra completion time each
//! core's MTE streams lose to L2/HBM contention (see
//! [`crate::contention`]).
//!
//! Concurrency model: each core gets a private copy of the global-memory
//! image (real cores share GM, but our kernels never communicate through
//! GM mid-run); after all cores join, the byte ranges each program wrote
//! to GM are merged back. Two safety nets guard the merge:
//!
//! 1. **Pre-flight disjointness.** Each program's *declared* GM output
//!    ranges (its `Move`-to-GM instructions) are checked pairwise-disjoint
//!    across programs with an active-end sweep — overlapping writes from
//!    different cores are a lowering bug ([`SimError::GmOverlap`]).
//! 2. **Execution cross-check.** The write spans each core *actually
//!    observed* (from `ExecInfo`) are verified to fall inside the
//!    program's declared ranges ([`SimError::UndeclaredGmWrite`]
//!    otherwise), and the merge-back copies exactly the observed spans —
//!    so a GM write the static scan failed to predict can never be
//!    silently dropped.

use crate::buffers::{BufferPeaks, SimError};
use crate::contention::contention_stalls;
pub use crate::contention::MemoryModel;
use crate::core::AiCore;
use crate::cost::{Backend, Capacities, CostModel};
use crate::counters::HwCounters;
use crate::lifetimes::BufferLifetimes;
use crate::trace::{Trace, TraceConfig};
use dv_isa::{BufferId, Instr, Program};

/// A simulated multi-core chip.
#[derive(Clone, Debug)]
pub struct Chip {
    /// Number of AI Cores (Ascend 910: 32).
    pub cores: usize,
    /// Cost model shared by all cores.
    pub cost: CostModel,
    /// Scratchpad capacities per core.
    pub caps: Capacities,
    /// Per-instruction trace recording (off by default).
    pub trace: TraceConfig,
    /// How concurrent cores share the path to global memory
    /// ([`MemoryModel::Independent`] by default — the legacy behaviour).
    pub memory: MemoryModel,
}

/// The result of a chip run.
#[derive(Clone, Debug)]
pub struct ChipRun {
    /// Counters per physical core (index parallel to `core_cycles` and
    /// `traces`), dispatch included.
    pub per_core: Vec<HwCounters>,
    /// Cycles per core including dispatch overhead and (under a shared
    /// memory model) contention stalls.
    pub core_cycles: Vec<u64>,
    /// The chip-level cycle count: max over cores (cores run in
    /// parallel).
    pub cycles: u64,
    /// Sum of all counters — total work, for utilization statistics.
    pub total: HwCounters,
    /// Per-core instruction traces (empty unless the chip's
    /// [`TraceConfig`] enables tracing). `Trace::core` holds the physical
    /// core id.
    pub traces: Vec<Trace>,
    /// Scratchpad occupancy high-water marks, max over all cores.
    pub peaks: BufferPeaks,
    /// Per-core buffer live ranges (empty unless tracing was enabled —
    /// lifetime recording is gated with the trace). Index parallel to
    /// `traces`; `BufferLifetimes::core` holds the physical core id.
    pub lifetimes: Vec<BufferLifetimes>,
}

impl ChipRun {
    /// Export this run's traces as Chrome trace-event JSON (empty trace
    /// list when tracing was off — the JSON is still valid). Buffer live
    /// ranges are included as async "live-range" slices per scratchpad
    /// row.
    pub fn chrome_trace_json(&self) -> String {
        crate::trace::chrome_trace_json_with_lifetimes(&self.traces, &self.lifetimes)
    }

    /// Per-(unit, mnemonic) cycle breakdown aggregated over all cores.
    pub fn breakdown(&self) -> crate::trace::Breakdown {
        crate::trace::Breakdown::from_traces(&self.traces)
    }
}

impl Chip {
    /// An Ascend-910-like chip: 32 cores, default cost model, independent
    /// memory paths (opt into contention with [`Chip::with_memory`]).
    pub fn ascend910() -> Chip {
        Chip {
            cores: 32,
            cost: CostModel::ascend910_like(),
            caps: Capacities::ASCEND910,
            trace: TraceConfig::OFF,
            memory: MemoryModel::Independent,
        }
    }

    /// A chip with a custom core count and cost model.
    pub fn new(cores: usize, cost: CostModel) -> Chip {
        assert!(cores > 0, "a chip needs at least one core");
        Chip {
            cores,
            cost,
            caps: Capacities::ASCEND910,
            trace: TraceConfig::OFF,
            memory: MemoryModel::Independent,
        }
    }

    /// The same chip with a different trace configuration.
    pub fn with_trace(mut self, trace: TraceConfig) -> Chip {
        self.trace = trace;
        self
    }

    /// The same chip with a different memory-hierarchy model.
    pub fn with_memory(mut self, memory: MemoryModel) -> Chip {
        self.memory = memory;
        self
    }

    /// The same chip with a different host execution backend. Backends
    /// only change host wall-clock: simulated results, counters, traces,
    /// and peaks are identical across all of them.
    pub fn with_backend(mut self, backend: Backend) -> Chip {
        self.cost = self.cost.with_backend(backend);
        self
    }

    /// Execute `programs` (one per tile) over the cores, reading and
    /// updating the global-memory image `gm` in place.
    pub fn run(&self, gm: &mut [u8], programs: &[Program]) -> Result<ChipRun, SimError> {
        // Recover each program's declared GM output ranges up front, and
        // check cross-program disjointness (a lowering invariant).
        let declared: Vec<Vec<(usize, usize)>> = programs.iter().map(gm_write_ranges).collect();
        check_disjoint(&declared)?;
        self.run_with_declared(gm, programs, &declared)
    }

    /// The body of [`Chip::run`] with the declared merge-back ranges made
    /// explicit. Split out so tests can feed a declaration list that
    /// disagrees with what execution does and watch the cross-check fire.
    fn run_with_declared(
        &self,
        gm: &mut [u8],
        programs: &[Program],
        declared: &[Vec<(usize, usize)>],
    ) -> Result<ChipRun, SimError> {
        // Round-robin programs onto cores.
        let groups: Vec<Vec<usize>> = (0..self.cores)
            .map(|c| (c..programs.len()).step_by(self.cores).collect::<Vec<_>>())
            .collect();

        struct CoreResult {
            counters: HwCounters,
            cycles: u64,
            writes: Vec<(usize, Vec<u8>)>,
            trace: Trace,
            lifetimes: BufferLifetimes,
            peaks: BufferPeaks,
        }

        let gm_ref: &[u8] = gm;
        // Per-core body, shared by the threaded and sequential paths so the
        // backend choice cannot fork simulated semantics.
        let run_core = |core_id: usize, jobs: &[usize]| -> Result<Option<CoreResult>, SimError> {
            if jobs.is_empty() {
                return Ok(None);
            }
            let mut core = AiCore::with_capacities(self.cost, self.caps, gm_ref.len());
            core.set_trace(self.trace);
            core.buffers_mut().gm_bytes_mut().copy_from_slice(gm_ref);
            let mut dispatch = 0u64;
            let mut writes = Vec::new();
            for &j in jobs {
                core.run(&programs[j])?;
                dispatch += self.cost.core_dispatch;
                // Cross-check the write spans execution
                // observed against the declaration, and merge
                // back exactly what was observed.
                let observed = coalesce(core.take_gm_writes());
                let allowed = coalesce(
                    declared[j]
                        .iter()
                        .map(|&(off, len)| (off, off + len))
                        .collect(),
                );
                for &(start, end) in &observed {
                    if !allowed.iter().any(|&(a, b)| a <= start && end <= b) {
                        return Err(SimError::UndeclaredGmWrite {
                            program: j,
                            observed: (start, end),
                        });
                    }
                    writes.push((start, core.buffers().gm_bytes()[start..end].to_vec()));
                }
            }
            let counters = core.counters().clone();
            let cycles = counters.cycles + dispatch;
            let peaks = *core.buffers().peaks();
            let mut trace = core.take_trace();
            trace.core = core_id;
            let mut lifetimes = core.take_lifetimes();
            lifetimes.core = core_id;
            Ok(Some(CoreResult {
                counters,
                cycles,
                writes,
                trace,
                lifetimes,
                peaks,
            }))
        };

        // `Threaded` runs independent cores on host threads; the other
        // backends walk the cores sequentially. Both produce identical
        // results — only host wall-clock differs.
        let results: Vec<Option<CoreResult>> = if self.cost.backend == Backend::Threaded {
            std::thread::scope(|s| {
                let run_core = &run_core;
                let handles: Vec<_> = groups
                    .iter()
                    .enumerate()
                    .map(|(core_id, jobs)| s.spawn(move || run_core(core_id, jobs)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("core thread panicked"))
                    .collect::<Result<Vec<_>, _>>()
            })?
        } else {
            groups
                .iter()
                .enumerate()
                .map(|(core_id, jobs)| run_core(core_id, jobs))
                .collect::<Result<Vec<_>, _>>()?
        };

        let mut active: Vec<CoreResult> = results.into_iter().flatten().collect();

        // Memory-hierarchy stage: book the completion time each core's
        // MTE streams lose to the shared L2/HBM path. Independent cores
        // lose nothing; this is exactly the legacy behaviour.
        let stalls: Vec<u64> = match self.memory {
            MemoryModel::Independent => vec![0; active.len()],
            MemoryModel::SharedBandwidth { bytes_per_cycle } => {
                let demands: Vec<(u64, u64)> = active
                    .iter()
                    .map(|r| (r.cycles, r.counters.gm_bytes))
                    .collect();
                contention_stalls(&demands, bytes_per_cycle, self.cost.move_bytes_per_cycle)
            }
        };

        let mut per_core = Vec::new();
        let mut core_cycles = Vec::new();
        let mut traces = Vec::new();
        let mut lifetimes = Vec::new();
        let mut total = HwCounters::default();
        let mut peaks = BufferPeaks::default();
        let mut max_cycles = 0u64;
        for (mut r, stall) in active.drain(..).zip(stalls) {
            for (off, bytes) in &r.writes {
                gm[*off..*off + bytes.len()].copy_from_slice(bytes);
            }
            r.counters.contention_stalls = stall;
            r.trace.contention = stall;
            max_cycles = max_cycles.max(r.cycles + stall);
            total.merge(&r.counters);
            peaks.merge_max(&r.peaks);
            core_cycles.push(r.cycles + stall);
            per_core.push(r.counters);
            if self.trace.enabled {
                traces.push(r.trace);
                lifetimes.push(r.lifetimes);
            }
        }
        Ok(ChipRun {
            per_core,
            core_cycles,
            cycles: max_cycles,
            total,
            traces,
            peaks,
            lifetimes,
        })
    }
}

/// The byte ranges a program declares it will write to global memory (its
/// `Move` instructions with a GM destination — the only GM-writing
/// instruction the ISA admits; execution cross-checks this claim against
/// the write spans actually observed).
fn gm_write_ranges(p: &Program) -> Vec<(usize, usize)> {
    p.instrs()
        .iter()
        .filter_map(|i| match i {
            Instr::Move(m) if m.dst.buffer == BufferId::Gm => Some((m.dst.offset, m.bytes)),
            _ => None,
        })
        .collect()
}

/// Sort half-open `(start, end)` spans and merge overlapping or abutting
/// neighbours; empty spans vanish.
fn coalesce(mut spans: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    spans.retain(|&(s, e)| e > s);
    spans.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(spans.len());
    for (s, e) in spans {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Check that no two *programs* write overlapping GM ranges (overlap
/// within one program is fine — a program may legally rewrite its own
/// output).
///
/// Active-end sweep over the ranges in start order: `best` is the
/// processed range with the maximum end, `alt` the maximum-end processed
/// range owned by a *different* program than `best` (so any processed
/// range of any other owner ends at or before `alt.1`). A new range
/// conflicts iff it starts before `best`'s end with a different owner, or
/// before `alt`'s end otherwise. A plain `windows(2)` compare misses
/// containment: `(0,100,p0), (10,20,p0), (30,40,p1)` sorts the inner
/// same-program range between the container and the victim.
fn check_disjoint(ranges: &[Vec<(usize, usize)>]) -> Result<(), SimError> {
    let mut flat: Vec<(usize, usize, usize)> = Vec::new(); // (start, end, program)
    for (pi, rs) in ranges.iter().enumerate() {
        for &(off, len) in rs {
            if len > 0 {
                flat.push((off, off + len, pi));
            }
        }
    }
    flat.sort_unstable();
    // Sentinel owners that can never equal a real program index.
    let mut best: (usize, usize, usize) = (0, 0, usize::MAX);
    let mut alt: (usize, usize, usize) = (0, 0, usize::MAX);
    for &(s, e, p) in &flat {
        let hit = if s < best.1 && p != best.2 {
            Some(best)
        } else if s < alt.1 && p != alt.2 {
            Some(alt)
        } else {
            None
        };
        if let Some((os, oe, op)) = hit {
            return Err(SimError::GmOverlap {
                prog_a: op,
                range_a: (os, oe),
                prog_b: p,
                range_b: (s, e),
            });
        }
        if e > best.1 {
            if p != best.2 && best.2 != usize::MAX {
                alt = best;
            }
            best = (s, e, p);
        } else if p != best.2 && e > alt.1 {
            alt = (s, e, p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_fp16::F16;
    use dv_isa::{Addr, DataMove, Mask, VectorInstr, VectorOp};
    use proptest::prelude::*;

    /// A program that doubles 128 f16 values: GM[in] -> UB, vadd, UB ->
    /// GM[out].
    fn doubler(in_off: usize, out_off: usize) -> Program {
        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(
            Addr::gm(in_off),
            Addr::ub(0),
            256,
        )))
        .unwrap();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(256),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        )))
        .unwrap();
        p.push(Instr::Move(DataMove::new(
            Addr::ub(256),
            Addr::gm(out_off),
            256,
        )))
        .unwrap();
        p
    }

    /// A pure streaming program: GM[in] -> UB -> GM[out], `bytes` long.
    fn streamer(in_off: usize, out_off: usize, bytes: usize) -> Program {
        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(
            Addr::gm(in_off),
            Addr::ub(0),
            bytes,
        )))
        .unwrap();
        p.push(Instr::Move(DataMove::new(
            Addr::ub(0),
            Addr::gm(out_off),
            bytes,
        )))
        .unwrap();
        p
    }

    fn gm_with(vals: &[F16], bytes: usize) -> Vec<u8> {
        let mut gm = vec![0u8; bytes];
        gm[..vals.len() * 2].copy_from_slice(dv_fp16::as_bytes(vals));
        gm
    }

    #[test]
    fn parallel_tiles_produce_correct_gm() {
        let vals: Vec<F16> = (0..512).map(|i| F16::from_f32((i % 100) as f32)).collect();
        let mut gm = gm_with(&vals, 4096);
        // four tiles of 128 elements, outputs at byte 2048 onward
        let programs: Vec<Program> = (0..4).map(|t| doubler(t * 256, 2048 + t * 256)).collect();
        let chip = Chip::new(4, CostModel::ascend910_like());
        let run = chip.run(&mut gm, &programs).unwrap();
        let out = dv_fp16::from_bytes(&gm[2048..2048 + 1024]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.to_f32(), 2.0 * ((i % 100) as f32), "element {i}");
        }
        assert_eq!(run.per_core.len(), 4);
        assert!(run.cycles > 0);
    }

    #[test]
    fn chip_cycles_is_max_not_sum() {
        let vals: Vec<F16> = (0..512).map(|i| F16::from_f32(i as f32 % 7.0)).collect();
        let programs: Vec<Program> = (0..4).map(|t| doubler(t * 256, 2048 + t * 256)).collect();

        let mut gm1 = gm_with(&vals, 4096);
        let chip1 = Chip::new(1, CostModel::ascend910_like());
        let seq = chip1.run(&mut gm1, &programs).unwrap();

        let mut gm4 = gm_with(&vals, 4096);
        let chip4 = Chip::new(4, CostModel::ascend910_like());
        let par = chip4.run(&mut gm4, &programs).unwrap();

        assert_eq!(gm1, gm4, "results identical regardless of core count");
        // 4 equal tiles: 4 cores should be ~4x faster.
        assert_eq!(seq.cycles, 4 * par.cycles);
        // total work identical
        assert_eq!(seq.total.cycles, par.total.cycles);
    }

    #[test]
    fn more_cores_than_tiles_is_fine() {
        let vals: Vec<F16> = (0..128).map(|_| F16::ONE).collect();
        let mut gm = gm_with(&vals, 2048);
        let chip = Chip::new(32, CostModel::ascend910_like());
        let run = chip.run(&mut gm, &[doubler(0, 1024)]).unwrap();
        assert_eq!(run.per_core.len(), 1, "idle cores report nothing");
        let out = dv_fp16::from_bytes(&gm[1024..1280]);
        assert!(out.iter().all(|v| v.to_f32() == 2.0));
    }

    #[test]
    fn overlapping_gm_writes_detected() {
        let mut gm = vec![0u8; 4096];
        // both tiles write to byte 2048
        let programs = vec![doubler(0, 2048), doubler(256, 2048)];
        let chip = Chip::new(2, CostModel::ascend910_like());
        match chip.run(&mut gm, &programs) {
            Err(SimError::GmOverlap { prog_a, prog_b, .. }) => {
                assert_eq!((prog_a, prog_b), (0, 1));
            }
            other => panic!("expected GmOverlap, got {other:?}"),
        }
    }

    /// The exact miss from the issue: p0 declares (0,100) and (10,20) —
    /// the inner range sorts *between* the container and p1's (30,40), so
    /// the adjacent-`windows(2)` compare saw only same-program and
    /// non-overlapping neighbour pairs and let the contained cross-program
    /// range through.
    #[test]
    fn containment_across_a_same_program_neighbour_is_detected() {
        let ranges = vec![vec![(0, 100), (10, 10)], vec![(30, 10)]];
        match check_disjoint(&ranges) {
            Err(SimError::GmOverlap {
                prog_a,
                range_a,
                prog_b,
                range_b,
            }) => {
                assert_eq!((prog_a, prog_b), (0, 1));
                assert_eq!(range_a, (0, 100));
                assert_eq!(range_b, (30, 40));
            }
            other => panic!("expected GmOverlap, got {other:?}"),
        }
    }

    /// The same containment miss driven end-to-end through real programs:
    /// p0 streams a 256-byte output plus a small rewrite inside it, p1
    /// streams 32 bytes landing strictly inside p0's big range.
    #[test]
    fn contained_overlap_between_programs_rejected_at_run() {
        let mut gm = vec![0u8; 8192];
        let mut p0 = streamer(0, 4096, 256);
        // a same-program rewrite inside [4096, 4352) that sorts between
        // the container and the victim
        p0.push(Instr::Move(DataMove::new(
            Addr::ub(0),
            Addr::gm(4096 + 16),
            32,
        )))
        .unwrap();
        let p1 = streamer(512, 4096 + 64, 32);
        let chip = Chip::new(2, CostModel::ascend910_like());
        match chip.run(&mut gm, &[p0, p1]) {
            Err(SimError::GmOverlap { prog_a, prog_b, .. }) => {
                assert_eq!((prog_a, prog_b), (0, 1));
            }
            other => panic!("expected GmOverlap, got {other:?}"),
        }
    }

    /// Overlap *within* one program stays legal: a program may rewrite its
    /// own output.
    #[test]
    fn same_program_overlap_is_allowed() {
        let mut gm = vec![0u8; 4096];
        let mut p0 = streamer(0, 2048, 256);
        p0.push(Instr::Move(DataMove::new(Addr::ub(0), Addr::gm(2064), 32)))
            .unwrap();
        let chip = Chip::new(1, CostModel::ascend910_like());
        chip.run(&mut gm, &[p0]).unwrap();
    }

    /// An observed GM write outside the declared merge-back ranges is a
    /// typed error, not silently dropped bytes. Driven through the
    /// declared-ranges seam: execution writes GM[1024,1280) but the
    /// declaration claims only the first half.
    #[test]
    fn undeclared_gm_write_is_a_typed_error() {
        let vals: Vec<F16> = (0..128).map(|_| F16::ONE).collect();
        let mut gm = gm_with(&vals, 2048);
        let programs = [doubler(0, 1024)];
        let chip = Chip::new(1, CostModel::ascend910_like());
        let declared = vec![vec![(1024, 128)]];
        match chip.run_with_declared(&mut gm, &programs, &declared) {
            Err(SimError::UndeclaredGmWrite { program, observed }) => {
                assert_eq!(program, 0);
                assert_eq!(observed, (1024, 1280));
            }
            other => panic!("expected UndeclaredGmWrite, got {other:?}"),
        }
        // The honest declaration passes and merges the bytes back.
        let declared = vec![vec![(1024, 256)]];
        chip.run_with_declared(&mut gm, &programs, &declared)
            .unwrap();
        let out = dv_fp16::from_bytes(&gm[1024..1280]);
        assert!(out.iter().all(|v| v.to_f32() == 2.0));
    }

    /// Naive O(n²) all-pairs reference for cross-program overlap.
    fn overlaps_naive(ranges: &[Vec<(usize, usize)>]) -> bool {
        for (pa, ra) in ranges.iter().enumerate() {
            for (pb, rb) in ranges.iter().enumerate() {
                if pa >= pb {
                    continue;
                }
                for &(oa, la) in ra {
                    for &(ob, lb) in rb {
                        if la > 0 && lb > 0 && oa < ob + lb && ob < oa + la {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    proptest! {
        #[test]
        fn disjointness_sweep_matches_naive_reference(
            ranges in proptest::collection::vec(
                proptest::collection::vec((0usize..96, 0usize..24), 0..8),
                0..6,
            )
        ) {
            let sweep_ok = check_disjoint(&ranges).is_ok();
            prop_assert_eq!(sweep_ok, !overlaps_naive(&ranges));
        }
    }

    #[test]
    fn traced_run_matches_counters_and_tracks_peaks() {
        let vals: Vec<F16> = (0..512).map(|i| F16::from_f32((i % 50) as f32)).collect();
        let mut gm = gm_with(&vals, 4096);
        let programs: Vec<Program> = (0..4).map(|t| doubler(t * 256, 2048 + t * 256)).collect();
        let chip =
            Chip::new(2, CostModel::ascend910_like()).with_trace(crate::trace::TraceConfig::ON);
        let run = chip.run(&mut gm, &programs).unwrap();

        // One trace per active core, each consistent with that core's
        // counters, and the aggregate consistent with the totals.
        assert_eq!(run.traces.len(), run.per_core.len());
        for (t, c) in run.traces.iter().zip(&run.per_core) {
            assert_eq!(t.total_cycles(), c.cycles);
            assert_eq!(t.events.len(), c.total_issues() as usize);
        }
        run.breakdown().verify_against(&run.total).unwrap();

        // The doubler stages 512 bytes in UB per tile.
        assert_eq!(run.peaks.of(BufferId::Ub), 512);
        assert_eq!(run.peaks.of(BufferId::L1), 0);

        let json = run.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"vadd\""));

        // Live ranges ride along with the trace: each core saw its UB
        // staging region live, and the export carries async slices.
        assert_eq!(run.lifetimes.len(), run.traces.len());
        for lt in &run.lifetimes {
            assert!(lt.of(BufferId::Ub).count() > 0);
        }
        assert!(json.contains("\"cat\":\"live-range\""));

        // Untraced runs record nothing but count identically.
        let mut gm2 = gm_with(&vals, 4096);
        let untraced = Chip::new(2, CostModel::ascend910_like())
            .run(&mut gm2, &programs)
            .unwrap();
        assert!(untraced.traces.is_empty());
        assert!(untraced.lifetimes.is_empty());
        assert_eq!(untraced.total, run.total);
    }

    #[test]
    fn empty_program_list() {
        let mut gm = vec![0u8; 64];
        let chip = Chip::new(2, CostModel::ascend910_like());
        let run = chip.run(&mut gm, &[]).unwrap();
        assert_eq!(run.cycles, 0);
        assert!(run.per_core.is_empty());
    }

    #[test]
    fn shared_bandwidth_books_contention_without_changing_results() {
        // Four 8 KiB streamers on four cores: each demands ~27 B/cyc, so
        // a 32 B/cyc pipe is ~3.4x oversubscribed.
        let vals: Vec<F16> = (0..4096).map(|i| F16::from_f32((i % 31) as f32)).collect();
        let programs: Vec<Program> = (0..4)
            .map(|t| streamer(t * 8192, 32768 + t * 8192, 8192))
            .collect();

        let mut gm_i = gm_with(&vals, 65536);
        let indep = Chip::new(4, CostModel::ascend910_like());
        let run_i = indep.run(&mut gm_i, &programs).unwrap();

        let mut gm_s = gm_with(&vals, 65536);
        let shared =
            Chip::new(4, CostModel::ascend910_like()).with_memory(MemoryModel::SharedBandwidth {
                bytes_per_cycle: 32,
            });
        let run_s = shared.run(&mut gm_s, &programs).unwrap();

        assert_eq!(gm_i, gm_s, "contention reshapes time, never data");
        assert_eq!(run_i.total.contention_stalls, 0);
        assert!(run_s.total.contention_stalls > 0);
        assert!(run_s.cycles > run_i.cycles);
        let dispatch = shared.cost.core_dispatch; // one program per core
        for (cc, c) in run_s.core_cycles.iter().zip(&run_s.per_core) {
            assert_eq!(
                *cc,
                c.cycles + dispatch + c.contention_stalls,
                "core cycles = work + dispatch + booked stall"
            );
            assert!(c.contention_stalls > 0);
        }
        // Everything except the stall booking matches the independent run.
        for (a, b) in run_i.per_core.iter().zip(&run_s.per_core) {
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.gm_bytes, b.gm_bytes);
        }
    }

    #[test]
    fn ample_shared_bandwidth_is_indistinguishable_from_independent() {
        let vals: Vec<F16> = (0..512).map(|i| F16::from_f32((i % 13) as f32)).collect();
        let programs: Vec<Program> = (0..4).map(|t| doubler(t * 256, 2048 + t * 256)).collect();
        let mut gm_i = gm_with(&vals, 4096);
        let run_i = Chip::new(4, CostModel::ascend910_like())
            .run(&mut gm_i, &programs)
            .unwrap();
        let mut gm_s = gm_with(&vals, 4096);
        let run_s = Chip::new(4, CostModel::ascend910_like())
            .with_memory(MemoryModel::ascend910_hbm())
            .run(&mut gm_s, &programs)
            .unwrap();
        assert_eq!(gm_i, gm_s);
        assert_eq!(run_i.cycles, run_s.cycles);
        assert_eq!(run_s.total.contention_stalls, 0);
        assert_eq!(run_i.core_cycles, run_s.core_cycles);
    }
}
