#![deny(missing_docs)]
//! Functional, cycle-approximate simulator of a DaVinci (Ascend 910) AI
//! Core (paper, Section III).
//!
//! The simulator plays the role of the Ascend 910 chip in the paper's
//! evaluation. It is:
//!
//! * **functional** — every instruction really computes: buffers hold real
//!   f16 bytes, `vmax` really maxes, `Im2Col` really rearranges, `Col2Im`
//!   really scatter-adds. Every kernel's output is checked bit-exactly
//!   against the golden references in `dv-tensor`.
//! * **cycle-approximate** — each instruction charges cycles through an
//!   explicit [`cost::CostModel`]. The model captures the structural
//!   quantities the paper's speedups derive from: per-instruction issue
//!   overhead (what the hardware *repeat* parameter amortises), per-repeat
//!   vector throughput independent of how many mask lanes are enabled
//!   (what mask *saturation* exploits), SCU transformation throughput, and
//!   DMA bandwidth. Absolute cycle counts are not Ascend-910 silicon
//!   numbers; relative shapes are produced by the same mechanisms the
//!   paper describes.
//!
//! [`AiCore`] simulates one core; [`chip::Chip`] fans tiles out over up to
//! 32 cores with `std::thread::scope` and reports the max-over-cores cycle
//! count, matching "the outer loops are parallelized between the AI Cores
//! available on the target device" (Section IV-A).

pub mod buffers;
pub mod chip;
pub mod contention;
pub mod core;
pub mod cost;
pub mod counters;
pub mod exec;
pub mod lifetimes;
pub mod rename;
pub mod trace;

pub use crate::core::{pipe_of, AiCore};
pub use buffers::{BufferPeaks, BufferSet, SimError};
pub use chip::{Chip, ChipRun, MemoryModel};
pub use cost::{Backend, Capacities, CostModel, IssueModel};
pub use counters::{HwCounters, Unit};
pub use lifetimes::{BufferLifetimes, LiveRange};
pub use rename::RenameDenied;
pub use trace::{
    chrome_trace_json, chrome_trace_json_with_lifetimes, Breakdown, BreakdownRow, Trace,
    TraceConfig, TraceEvent,
};
