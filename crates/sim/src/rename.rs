//! Buffer-slot renaming: WAR/WAW relaxation for the dual-pipe scoreboard.
//!
//! The dual-pipe scoreboard serialises a writer behind every in-flight
//! reader (WAR) and writer (WAW) of an overlapping byte span — exactly
//! like RAW. But anti- and output-dependences are *name* conflicts, not
//! dataflow: real implicit-im2col accelerators hide them by
//! multi-buffering the staging storage, so the next band's prefetch can
//! land while the current band is still being consumed. This module
//! models that as register-renaming-style versioning of scratchpad
//! spans: a writer that would WAR/WAW-stall against accesses of an
//! *older* version of its span instead issues immediately into a rotated
//! physical slot, provided the scratchpad has headroom for both versions
//! to be resident at once.
//!
//! The capacity check is honest: a rotation is granted only when the
//! buffer's high-water mark (every byte the program has architecturally
//! touched) plus all currently-rotated in-flight bytes plus the new span
//! still fit the physical capacity. When it does not fit, the scheduler
//! receives a typed [`RenameDenied`] and falls back to the full WAR/WAW
//! stall — never silent corruption, never an optimistic overlap the
//! hardware could not buffer. Functional execution is program-order
//! either way, so results are bit-identical with renaming on or off;
//! only issue timing changes, and only ever downward (the renamed
//! constraint set is a subset of the non-renamed one).

use dv_isa::BufferId;
use std::fmt;

/// A rotation request the slot file refused: the scratchpad cannot hold
/// another live version of the span alongside everything already
/// resident. The scheduler falls back to the ordinary WAR/WAW stall and
/// books the refusal in `HwCounters::rename_denied`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RenameDenied {
    /// The scratchpad the writer targets.
    pub buffer: BufferId,
    /// Bytes the rotated slot would need.
    pub requested: usize,
    /// Bytes already held by in-flight rotated versions of this buffer.
    pub in_flight: usize,
    /// The buffer's architectural high-water mark at the refusal.
    pub used: usize,
    /// Physical capacity of the buffer.
    pub capacity: usize,
}

impl fmt::Display for RenameDenied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rename denied on {}: {} used + {} rotated in flight + {} requested \
             exceeds the {}-byte capacity",
            self.buffer, self.used, self.in_flight, self.requested, self.capacity
        )
    }
}

impl std::error::Error for RenameDenied {}

/// The physical slot file: tracks how many bytes each scratchpad has
/// lent out to in-flight rotated versions, and grants or refuses new
/// rotations against the remaining headroom.
#[derive(Clone, Debug, Default)]
pub(crate) struct SlotFile {
    /// One entry per granted rotation still in flight:
    /// `(buffer, free_at, bytes)`. The physical slot is reclaimed once
    /// every bypassed access of the older version has retired
    /// (`free_at`).
    rotated: Vec<(BufferId, u64, usize)>,
}

impl SlotFile {
    /// Bytes of `buffer` currently lent to rotated versions that are
    /// still in flight at cycle `now`.
    pub fn live_bytes(&self, buffer: BufferId, now: u64) -> usize {
        self.rotated
            .iter()
            .filter(|&&(b, free_at, _)| b == buffer && free_at > now)
            .map(|&(_, _, bytes)| bytes)
            .sum()
    }

    /// Try to grant a rotated slot of `bytes` bytes in `buffer` for a
    /// writer issuing at cycle `now` whose bypassed WAR/WAW accesses all
    /// retire by `free_at`. `used` is the buffer's architectural
    /// high-water mark and `capacity` its physical size.
    pub fn try_rotate(
        &mut self,
        buffer: BufferId,
        bytes: usize,
        now: u64,
        free_at: u64,
        used: usize,
        capacity: usize,
    ) -> Result<(), RenameDenied> {
        // Reclaim slots whose older-version accesses have all retired.
        self.rotated.retain(|&(_, f, _)| f > now);
        let in_flight = self.live_bytes(buffer, now);
        if used.saturating_add(in_flight).saturating_add(bytes) > capacity {
            return Err(RenameDenied {
                buffer,
                requested: bytes,
                in_flight,
                used,
                capacity,
            });
        }
        self.rotated.push((buffer, free_at, bytes));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_within_headroom_and_tracks_live_bytes() {
        let mut slots = SlotFile::default();
        assert_eq!(
            slots.try_rotate(BufferId::Ub, 256, 0, 100, 512, 1024),
            Ok(())
        );
        assert_eq!(slots.live_bytes(BufferId::Ub, 0), 256);
        // A second rotation while the first is in flight must count it.
        assert_eq!(
            slots.try_rotate(BufferId::Ub, 256, 10, 120, 512, 1024),
            Ok(())
        );
        assert_eq!(slots.live_bytes(BufferId::Ub, 10), 512);
        // Other buffers have their own headroom.
        assert_eq!(slots.live_bytes(BufferId::L1, 10), 0);
    }

    #[test]
    fn refuses_with_typed_error_when_capacity_is_short() {
        let mut slots = SlotFile::default();
        slots
            .try_rotate(BufferId::Ub, 300, 0, 100, 400, 1024)
            .unwrap();
        let err = slots
            .try_rotate(BufferId::Ub, 400, 10, 120, 400, 1024)
            .unwrap_err();
        assert_eq!(
            err,
            RenameDenied {
                buffer: BufferId::Ub,
                requested: 400,
                in_flight: 300,
                used: 400,
                capacity: 1024,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("rename denied on UB"), "{msg}");
        assert!(msg.contains("400 requested"), "{msg}");
    }

    #[test]
    fn reclaims_slots_once_bypassed_accesses_retire() {
        let mut slots = SlotFile::default();
        slots
            .try_rotate(BufferId::Ub, 600, 0, 50, 200, 1024)
            .unwrap();
        // At cycle 60 the first rotation's older version has retired, so
        // its bytes are free again.
        assert_eq!(slots.live_bytes(BufferId::Ub, 60), 0);
        assert_eq!(
            slots.try_rotate(BufferId::Ub, 600, 60, 200, 200, 1024),
            Ok(())
        );
    }
}
