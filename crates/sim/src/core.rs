//! One AI Core: buffers + counters + cost model, executing programs.

use crate::buffers::{BufferSet, SimError};
use crate::cost::{Capacities, CostModel};
use crate::counters::HwCounters;
use crate::exec::execute_info;
use crate::trace::{Trace, TraceConfig, TraceEvent};
use dv_fp16::F16;
use dv_isa::{BufferId, Program};

/// A single simulated AI Core with a private global-memory image.
///
/// For multi-core runs, [`crate::chip::Chip`] gives each core a copy of
/// global memory and merges the (disjoint) written ranges afterwards —
/// the cores in our workloads never communicate through GM mid-kernel.
#[derive(Clone, Debug)]
pub struct AiCore {
    bufs: BufferSet,
    counters: HwCounters,
    cost: CostModel,
    trace_cfg: TraceConfig,
    trace: Trace,
    programs_run: usize,
}

impl AiCore {
    /// A core with Ascend-910 scratchpad capacities and a `gm_bytes`-byte
    /// global memory.
    pub fn new(cost: CostModel, gm_bytes: usize) -> AiCore {
        AiCore::with_capacities(cost, Capacities::ASCEND910, gm_bytes)
    }

    /// A core with explicit scratchpad capacities (used by tests and by
    /// the tiling-threshold experiments).
    pub fn with_capacities(cost: CostModel, caps: Capacities, gm_bytes: usize) -> AiCore {
        AiCore {
            bufs: BufferSet::new(caps, gm_bytes),
            counters: HwCounters::default(),
            cost,
            trace_cfg: TraceConfig::OFF,
            trace: Trace::default(),
            programs_run: 0,
        }
    }

    /// Enable or disable per-instruction trace recording. When disabled
    /// (the default) the run loop pays a single predictable branch per
    /// instruction and stores nothing.
    pub fn set_trace(&mut self, cfg: TraceConfig) {
        self.trace_cfg = cfg;
    }

    /// The trace recorded so far (empty unless tracing was enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take ownership of the recorded trace, leaving an empty one.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Load f16 data into global memory at a byte offset.
    pub fn load_gm(&mut self, offset: usize, data: &[F16]) -> Result<(), SimError> {
        self.bufs.load_f16_slice(BufferId::Gm, offset, data)
    }

    /// Read f16 data back from global memory.
    pub fn read_gm(&self, offset: usize, len: usize) -> Result<Vec<F16>, SimError> {
        self.bufs.read_f16_slice(BufferId::Gm, offset, len)
    }

    /// Execute a program to completion, accumulating counters (and trace
    /// events, if tracing is enabled).
    pub fn run(&mut self, program: &Program) -> Result<(), SimError> {
        let program_idx = self.programs_run;
        for (pc, instr) in program.instrs().iter().enumerate() {
            let start = self.counters.cycles;
            let info = execute_info(instr, &mut self.bufs, &self.cost)?;
            info.apply(&mut self.counters);
            if self.trace_cfg.enabled {
                self.trace.push(
                    &self.trace_cfg,
                    TraceEvent {
                        pc,
                        program: program_idx,
                        mnemonic: info.mnemonic,
                        unit: info.unit,
                        start,
                        cycles: info.cycles,
                        repeat: info.repeat,
                        useful_lanes: info.useful_lanes,
                        total_lanes: info.total_lanes,
                        src: info.src,
                        dst: info.dst,
                        bytes: info.bytes(),
                    },
                );
            }
        }
        self.programs_run += 1;
        Ok(())
    }

    /// Execute a program and return a per-instruction trace of
    /// `(pc, mnemonic, cycles charged)` — the debugging view behind
    /// `Program::disassemble`. For the full structured trace, enable
    /// [`AiCore::set_trace`] and use [`AiCore::trace`] instead.
    pub fn run_traced(
        &mut self,
        program: &Program,
    ) -> Result<Vec<(usize, &'static str, u64)>, SimError> {
        let mut trace = Vec::with_capacity(program.len());
        for (pc, instr) in program.instrs().iter().enumerate() {
            let info = execute_info(instr, &mut self.bufs, &self.cost)?;
            info.apply(&mut self.counters);
            trace.push((pc, info.mnemonic, info.cycles));
        }
        self.programs_run += 1;
        Ok(trace)
    }

    /// The hardware counters accumulated so far.
    pub fn counters(&self) -> &HwCounters {
        &self.counters
    }

    /// Reset the counters and any recorded trace (keeps buffer contents).
    pub fn reset_counters(&mut self) {
        self.counters = HwCounters::default();
        self.trace = Trace::default();
        self.programs_run = 0;
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Direct buffer access for white-box tests.
    pub fn buffers(&self) -> &BufferSet {
        &self.bufs
    }

    /// Mutable buffer access for white-box tests and chip-level merges.
    pub fn buffers_mut(&mut self) -> &mut BufferSet {
        &mut self.bufs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_isa::{Addr, DataMove, Instr, Mask, VectorInstr, VectorOp};

    #[test]
    fn run_executes_sequentially_and_counts() {
        let mut core = AiCore::new(CostModel::ascend910_like(), 4096);
        let data: Vec<F16> = (0..128).map(|i| F16::from_f32(i as f32)).collect();
        core.load_gm(0, &data).unwrap();

        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::ub(0), 256)))
            .unwrap();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(256),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        )))
        .unwrap();
        p.push(Instr::Move(DataMove::new(
            Addr::ub(256),
            Addr::gm(1024),
            256,
        )))
        .unwrap();
        core.run(&p).unwrap();

        let out = core.read_gm(1024, 128).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.to_f32(), (2 * i) as f32);
        }
        assert_eq!(core.counters().issues_of("mte_move"), 2);
        assert_eq!(core.counters().issues_of("vadd"), 1);
        assert!(core.counters().cycles > 0);
    }

    #[test]
    fn reset_counters_keeps_buffers() {
        let mut core = AiCore::new(CostModel::ascend910_like(), 1024);
        core.load_gm(0, &[F16::ONE]).unwrap();
        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::l1(0), 2)))
            .unwrap();
        core.run(&p).unwrap();
        assert!(core.counters().cycles > 0);
        core.reset_counters();
        assert_eq!(core.counters().cycles, 0);
        assert_eq!(core.read_gm(0, 1).unwrap()[0], F16::ONE);
    }

    #[test]
    fn run_traced_reports_per_instruction_cycles() {
        let mut core = AiCore::new(CostModel::ascend910_like(), 1024);
        core.load_gm(0, &[F16::ONE; 128]).unwrap();
        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::ub(0), 256)))
            .unwrap();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Relu,
            Addr::ub(256),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        )))
        .unwrap();
        let trace = core.run_traced(&p).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].1, "mte_move");
        assert_eq!(trace[1], (1, "vrelu", core.cost().issue_overhead + 1));
        let total: u64 = trace.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, core.counters().cycles);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut core = AiCore::new(CostModel::ascend910_like(), 0);
        let vals: Vec<F16> = [-2.0f32, -0.5, 0.0, 0.5, 3.0]
            .iter()
            .map(|&x| F16::from_f32(x))
            .collect();
        core.buffers_mut()
            .load_f16_slice(dv_isa::BufferId::Ub, 0, &vals)
            .unwrap();
        let mut p = Program::new();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Relu,
            Addr::ub(1024),
            Addr::ub(0),
            Addr::ub(0),
            Mask::first_n(5),
            1,
        )))
        .unwrap();
        core.run(&p).unwrap();
        let out = core
            .buffers()
            .read_f16_slice(dv_isa::BufferId::Ub, 1024, 5)
            .unwrap();
        let got: Vec<f32> = out.iter().map(|x| x.to_f32()).collect();
        assert_eq!(got, vec![0.0, 0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn error_propagates_from_mid_program() {
        let mut core = AiCore::new(CostModel::ascend910_like(), 64);
        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::l1(0), 2)))
            .unwrap();
        p.push(Instr::Move(DataMove::new(
            Addr::gm(0),
            Addr::l1(0),
            1 << 21,
        )))
        .unwrap(); // larger than L1
        assert!(core.run(&p).is_err());
    }
}
