//! One AI Core: buffers + counters + cost model, executing programs.
//!
//! Two issue models are supported (selected by
//! [`CostModel::issue_model`](crate::cost::CostModel)):
//!
//! * **single-issue** — the legacy serial machine: each instruction
//!   issues when the previous one retires, so `HwCounters::cycles` is the
//!   sum of per-instruction charges by construction;
//! * **dual-pipe** — instructions dispatch in program order onto two
//!   in-order pipes (MTE/SCU on one, Vector/Cube on the other), each
//!   pipe executing its stream back-to-back. Cross-pipe ordering is
//!   enforced only where it must be: a per-buffer byte-range scoreboard
//!   makes a consumer wait for the retirement of any in-flight producer
//!   whose span overlaps (RAW), and a writer wait for overlapping
//!   in-flight readers/writers (WAR/WAW). `HwCounters::cycles` is then
//!   the *makespan* over both pipes — never larger than the serial sum,
//!   and strictly smaller whenever independent MTE and Vector work
//!   overlaps (the paper's `Im2Col` pipeline is built on exactly that).
//!
//! With [`CostModel::rename`] enabled (the default), WAR/WAW hazards are
//! additionally relaxed by buffer-slot renaming: a writer that would
//! stall only on accesses of an *older* version of its span issues
//! immediately into a rotated physical slot when the scratchpad has
//! headroom for both versions (see [`crate::rename`]). RAW edges are
//! untouched, so the renamed schedule is a relaxation of the non-renamed
//! one — per-instruction issue cycles, and therefore the makespan, can
//! only shrink. When the slot file refuses a rotation
//! ([`crate::rename::RenameDenied`] — not enough physical headroom for
//! two live versions) the writer falls back to the full WAR/WAW stall.
//!
//! Functional execution always happens in program order, so all issue
//! models (single, dual-pipe, dual-pipe + rename) produce bit-identical
//! buffer contents — only the timing differs. A program boundary is a
//! full barrier: both pipes join before the next program begins.

use crate::buffers::{BufferSet, SimError};
use crate::cost::{Capacities, CostModel, IssueModel};
use crate::counters::HwCounters;
use crate::exec::{execute_info, ExecInfo, MemSpan};
use crate::lifetimes::{BufferLifetimes, LifetimeRecorder};
use crate::rename::SlotFile;
use crate::trace::{Trace, TraceConfig, TraceEvent};
use dv_fp16::F16;
use dv_isa::{BufferId, Program, Unit};

/// Which issue pipe a unit's instructions dispatch to: MTE and SCU share
/// the load/store pipe (0), Vector and Cube share the compute pipe (1).
/// Indexes [`HwCounters::pipe_stalls`].
pub fn pipe_of(unit: Unit) -> usize {
    match unit {
        Unit::Mte | Unit::Scu => 0,
        Unit::Vector | Unit::Cube => 1,
    }
}

/// One in-flight access the scoreboard still tracks.
struct BoardEntry {
    span: MemSpan,
    write: bool,
    /// Cycle at which the access retires.
    finish: u64,
}

/// Execute every instruction of `program`, charging `counters` under the
/// configured issue model, and report each instruction's timing to
/// `sink(pc, info, start, stall, raw_dep)`.
fn run_program(
    bufs: &mut BufferSet,
    cost: &CostModel,
    counters: &mut HwCounters,
    issued: &mut usize,
    program: &Program,
    mut sink: impl FnMut(usize, &ExecInfo, u64, u64, Option<usize>),
) -> Result<(), SimError> {
    match cost.issue_model {
        IssueModel::SingleIssue => {
            for (pc, instr) in program.instrs().iter().enumerate() {
                let start = counters.cycles;
                let info = execute_info(instr, bufs, cost)?;
                info.apply(counters);
                sink(pc, &info, start, 0, None);
                *issued += 1;
            }
        }
        IssueModel::DualPipe => {
            // Both pipes join at program boundaries: start from the
            // core's current makespan.
            let base = counters.cycles;
            let mut pipe_free = [base; 2];
            let mut board: Vec<BoardEntry> = Vec::new();
            let mut slots = SlotFile::default();
            // Program-order writer log feeding the flow arrows: the
            // latest writer of each span, independent of issue timing —
            // so the recorded RAW edges are identical with renaming on
            // or off.
            let mut writers: Vec<(MemSpan, usize)> = Vec::new();
            for (pc, instr) in program.instrs().iter().enumerate() {
                // Functional execution stays in program order — results
                // are bit-identical to the single-issue model.
                let info = execute_info(instr, bufs, cost)?;

                // Retired entries can never lift a future issue above its
                // pipe-ready cycle; drop them to keep the scan short.
                let horizon = pipe_free[0].min(pipe_free[1]);
                board.retain(|e| e.finish > horizon);

                // Hazard scan, RAW kept separate from WAR/WAW so the
                // renamer can bypass the latter without touching
                // dataflow.
                let mut ready_raw = base;
                let mut ready = base;
                for e in &board {
                    let raw = e.write && info.reads.iter().flatten().any(|r| r.overlaps(&e.span));
                    let war_waw = info.write.is_some_and(|w| w.overlaps(&e.span));
                    if raw {
                        ready_raw = ready_raw.max(e.finish);
                    }
                    if raw || war_waw {
                        ready = ready.max(e.finish);
                    }
                }
                // RAW producer for the trace's flow arrow: the latest
                // program-order writer of any byte this instruction
                // reads. Program order is invariant to the issue model,
                // so renaming never moves an arrow.
                let mut dep: Option<usize> = None;
                for (span, seq) in &writers {
                    if info.reads.iter().flatten().any(|r| r.overlaps(span))
                        && dep.is_none_or(|d| *seq > d)
                    {
                        dep = Some(*seq);
                    }
                }

                let pipe = pipe_of(info.unit);
                // Buffer-slot renaming: when WAR/WAW (not RAW, not the
                // pipe itself) is the binding constraint, try to issue
                // the write into a rotated physical slot. The rotation
                // is granted only if the scratchpad can hold both
                // versions; otherwise the typed refusal is counted and
                // the writer takes the full stall.
                if cost.rename && ready > pipe_free[pipe].max(ready_raw) {
                    if let Some(w) = info.write {
                        if w.buffer != BufferId::Gm {
                            let now = pipe_free[pipe].max(ready_raw);
                            match slots.try_rotate(
                                w.buffer,
                                w.end - w.start,
                                now,
                                ready,
                                bufs.peaks().of(w.buffer),
                                bufs.capacity(w.buffer),
                            ) {
                                Ok(()) => {
                                    ready = ready_raw;
                                    counters.renames += 1;
                                }
                                Err(_denied) => counters.rename_denied += 1,
                            }
                        }
                    }
                }

                let start = pipe_free[pipe].max(ready);
                let stall = start - pipe_free[pipe];
                let finish = start + info.cycles;
                pipe_free[pipe] = finish;

                info.apply_busy(counters);
                // One wait per instruction, booked against its own pipe:
                // even when an instruction hits both a RAW and a WAR/WAW
                // hazard, `ready` is a single max over the board, so the
                // stall can never be double-counted — and a rotated
                // write's eliminated WAR/WAW wait is simply gone, never
                // rebooked as RAW (`ready_raw` is computed before the
                // rotation and unchanged by it).
                counters.stall_cycles += stall;
                counters.pipe_stalls[pipe] += stall;
                counters.cycles = counters.cycles.max(finish);

                for r in info.reads.iter().flatten() {
                    board.push(BoardEntry {
                        span: *r,
                        write: false,
                        finish,
                    });
                }
                if let Some(w) = info.write {
                    board.push(BoardEntry {
                        span: w,
                        write: true,
                        finish,
                    });
                    // Fully-shadowed older writers can no longer be the
                    // latest producer of any byte; drop them so the log
                    // stays as small as the active working set.
                    writers.retain(|(s, _)| {
                        !(s.buffer == w.buffer && w.start <= s.start && s.end <= w.end)
                    });
                    writers.push((w, *issued));
                }

                sink(pc, &info, start, stall, dep);
                *issued += 1;
            }
        }
    }
    Ok(())
}

/// A single simulated AI Core with a private global-memory image.
///
/// For multi-core runs, [`crate::chip::Chip`] gives each core a copy of
/// global memory and merges the (disjoint) written ranges afterwards —
/// the cores in our workloads never communicate through GM mid-kernel.
#[derive(Clone, Debug)]
pub struct AiCore {
    bufs: BufferSet,
    counters: HwCounters,
    cost: CostModel,
    trace_cfg: TraceConfig,
    trace: Trace,
    lifetimes: LifetimeRecorder,
    programs_run: usize,
    /// Instructions executed since the last counter reset — the sequence
    /// space `TraceEvent::dep` indexes into.
    issued: usize,
    /// GM byte spans `[start, end)` written since the last
    /// [`AiCore::take_gm_writes`] — the execution-observed endpoints the
    /// chip cross-checks its statically declared merge-back ranges
    /// against. Always recorded (tracing on or off).
    gm_writes: Vec<(usize, usize)>,
}

impl AiCore {
    /// A core with Ascend-910 scratchpad capacities and a `gm_bytes`-byte
    /// global memory.
    pub fn new(cost: CostModel, gm_bytes: usize) -> AiCore {
        AiCore::with_capacities(cost, Capacities::ASCEND910, gm_bytes)
    }

    /// A core with explicit scratchpad capacities (used by tests and by
    /// the tiling-threshold experiments).
    pub fn with_capacities(cost: CostModel, caps: Capacities, gm_bytes: usize) -> AiCore {
        AiCore {
            bufs: BufferSet::new(caps, gm_bytes),
            counters: HwCounters::default(),
            cost,
            trace_cfg: TraceConfig::OFF,
            trace: Trace::default(),
            lifetimes: LifetimeRecorder::default(),
            programs_run: 0,
            issued: 0,
            gm_writes: Vec::new(),
        }
    }

    /// Enable or disable per-instruction trace recording. When disabled
    /// (the default) the run loop pays a single predictable branch per
    /// instruction and stores nothing.
    pub fn set_trace(&mut self, cfg: TraceConfig) {
        self.trace_cfg = cfg;
    }

    /// The trace recorded so far (empty unless tracing was enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take ownership of the recorded trace, leaving an empty one.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Drain the buffer live ranges recorded so far (empty unless tracing
    /// was enabled — lifetime recording is gated with the trace).
    pub fn take_lifetimes(&mut self) -> BufferLifetimes {
        self.lifetimes.take()
    }

    /// Drain the GM byte spans `[start, end)` the executed instructions
    /// actually wrote since the last call — the ground truth the chip's
    /// merge-back derives from, independent of any static scan of the
    /// program text.
    pub fn take_gm_writes(&mut self) -> Vec<(usize, usize)> {
        std::mem::take(&mut self.gm_writes)
    }

    /// Load f16 data into global memory at a byte offset.
    pub fn load_gm(&mut self, offset: usize, data: &[F16]) -> Result<(), SimError> {
        self.bufs.load_f16_slice(BufferId::Gm, offset, data)
    }

    /// Read f16 data back from global memory.
    pub fn read_gm(&self, offset: usize, len: usize) -> Result<Vec<F16>, SimError> {
        self.bufs.read_f16_slice(BufferId::Gm, offset, len)
    }

    /// Execute a program to completion, accumulating counters (and trace
    /// events, if tracing is enabled).
    pub fn run(&mut self, program: &Program) -> Result<(), SimError> {
        let program_idx = self.programs_run;
        let AiCore {
            bufs,
            counters,
            cost,
            trace_cfg,
            trace,
            lifetimes,
            issued,
            gm_writes,
            ..
        } = self;
        run_program(
            bufs,
            cost,
            counters,
            issued,
            program,
            |pc, info, start, stall, dep| {
                if let Some(w) = info.write {
                    if w.buffer == BufferId::Gm {
                        gm_writes.push((w.start, w.end));
                    }
                }
                if trace_cfg.enabled {
                    lifetimes.record(info, start, start + info.cycles);
                    trace.push(
                        trace_cfg,
                        TraceEvent {
                            pc,
                            program: program_idx,
                            mnemonic: info.mnemonic,
                            unit: info.unit,
                            start,
                            cycles: info.cycles,
                            stall,
                            dep,
                            repeat: info.repeat,
                            useful_lanes: info.useful_lanes,
                            total_lanes: info.total_lanes,
                            src: info.src,
                            dst: info.dst,
                            bytes: info.bytes(),
                        },
                    );
                }
            },
        )?;
        self.programs_run += 1;
        Ok(())
    }

    /// Execute a program and return a per-instruction trace of
    /// `(pc, mnemonic, cycles charged)` — the debugging view behind
    /// `Program::disassemble`. For the full structured trace, enable
    /// [`AiCore::set_trace`] and use [`AiCore::trace`] instead.
    pub fn run_traced(
        &mut self,
        program: &Program,
    ) -> Result<Vec<(usize, &'static str, u64)>, SimError> {
        let mut out = Vec::with_capacity(program.len());
        let AiCore {
            bufs,
            counters,
            cost,
            issued,
            gm_writes,
            ..
        } = self;
        run_program(
            bufs,
            cost,
            counters,
            issued,
            program,
            |pc, info, _, _, _| {
                if let Some(w) = info.write {
                    if w.buffer == BufferId::Gm {
                        gm_writes.push((w.start, w.end));
                    }
                }
                out.push((pc, info.mnemonic, info.cycles));
            },
        )?;
        self.programs_run += 1;
        Ok(out)
    }

    /// The hardware counters accumulated so far.
    pub fn counters(&self) -> &HwCounters {
        &self.counters
    }

    /// Reset the counters and any recorded trace (keeps buffer contents).
    pub fn reset_counters(&mut self) {
        self.counters = HwCounters::default();
        self.trace = Trace::default();
        self.lifetimes = LifetimeRecorder::default();
        self.programs_run = 0;
        self.issued = 0;
        self.gm_writes.clear();
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Direct buffer access for white-box tests.
    pub fn buffers(&self) -> &BufferSet {
        &self.bufs
    }

    /// Mutable buffer access for white-box tests and chip-level merges.
    pub fn buffers_mut(&mut self) -> &mut BufferSet {
        &mut self.bufs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_isa::{Addr, DataMove, Instr, Mask, VectorInstr, VectorOp};

    #[test]
    fn run_executes_sequentially_and_counts() {
        let mut core = AiCore::new(CostModel::ascend910_like(), 4096);
        let data: Vec<F16> = (0..128).map(|i| F16::from_f32(i as f32)).collect();
        core.load_gm(0, &data).unwrap();

        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::ub(0), 256)))
            .unwrap();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(256),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        )))
        .unwrap();
        p.push(Instr::Move(DataMove::new(
            Addr::ub(256),
            Addr::gm(1024),
            256,
        )))
        .unwrap();
        core.run(&p).unwrap();

        let out = core.read_gm(1024, 128).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.to_f32(), (2 * i) as f32);
        }
        assert_eq!(core.counters().issues_of("mte_move"), 2);
        assert_eq!(core.counters().issues_of("vadd"), 1);
        assert!(core.counters().cycles > 0);

        // The core observed exactly one GM write span — the store to
        // [1024, 1280) — and draining it leaves the list empty.
        assert_eq!(core.take_gm_writes(), vec![(1024, 1280)]);
        assert!(core.take_gm_writes().is_empty());
    }

    #[test]
    fn reset_counters_keeps_buffers() {
        let mut core = AiCore::new(CostModel::ascend910_like(), 1024);
        core.load_gm(0, &[F16::ONE]).unwrap();
        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::l1(0), 2)))
            .unwrap();
        core.run(&p).unwrap();
        assert!(core.counters().cycles > 0);
        core.reset_counters();
        assert_eq!(core.counters().cycles, 0);
        assert_eq!(core.read_gm(0, 1).unwrap()[0], F16::ONE);
    }

    #[test]
    fn run_traced_reports_per_instruction_cycles() {
        let mut core = AiCore::new(CostModel::ascend910_like(), 1024);
        core.load_gm(0, &[F16::ONE; 128]).unwrap();
        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::ub(0), 256)))
            .unwrap();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Relu,
            Addr::ub(256),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        )))
        .unwrap();
        let trace = core.run_traced(&p).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].1, "mte_move");
        assert_eq!(trace[1], (1, "vrelu", core.cost().issue_overhead + 1));
        // The vrelu reads what the move wrote (RAW), so even under the
        // dual-pipe model this chain fully serialises: makespan == sum,
        // and the vector pipe's wait for the move is booked as stall.
        let total: u64 = trace.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, core.counters().cycles);
        assert_eq!(core.counters().stall_cycles, trace[0].2);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut core = AiCore::new(CostModel::ascend910_like(), 0);
        let vals: Vec<F16> = [-2.0f32, -0.5, 0.0, 0.5, 3.0]
            .iter()
            .map(|&x| F16::from_f32(x))
            .collect();
        core.buffers_mut()
            .load_f16_slice(dv_isa::BufferId::Ub, 0, &vals)
            .unwrap();
        let mut p = Program::new();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Relu,
            Addr::ub(1024),
            Addr::ub(0),
            Addr::ub(0),
            Mask::first_n(5),
            1,
        )))
        .unwrap();
        core.run(&p).unwrap();
        let out = core
            .buffers()
            .read_f16_slice(dv_isa::BufferId::Ub, 1024, 5)
            .unwrap();
        let got: Vec<f32> = out.iter().map(|x| x.to_f32()).collect();
        assert_eq!(got, vec![0.0, 0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn error_propagates_from_mid_program() {
        let mut core = AiCore::new(CostModel::ascend910_like(), 64);
        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::l1(0), 2)))
            .unwrap();
        p.push(Instr::Move(DataMove::new(
            Addr::gm(0),
            Addr::l1(0),
            1 << 21,
        )))
        .unwrap(); // larger than L1
        assert!(core.run(&p).is_err());
    }

    /// A move and a vector op on disjoint UB ranges: under dual-pipe they
    /// overlap (makespan < sum, zero stalls); under single-issue they
    /// serialise.
    fn independent_pair() -> Program {
        let mut p = Program::new();
        // Vector pipe: initialise UB[4096..4608).
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Dup(F16::ZERO),
            Addr::ub(4096),
            Addr::ub(4096),
            Addr::ub(4096),
            Mask::FULL,
            2,
        )))
        .unwrap();
        // MTE pipe: independent load into UB[0..2048).
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::ub(0), 2048)))
            .unwrap();
        p
    }

    #[test]
    fn dual_pipe_overlaps_independent_work() {
        let p = independent_pair();
        let mut dual = AiCore::new(CostModel::ascend910_like(), 4096);
        dual.run(&p).unwrap();
        let mut single = AiCore::new(CostModel::single_issue(), 4096);
        single.run(&p).unwrap();

        // Identical work, identical busy cycles — but the dual-pipe
        // makespan is the max of the two charges, not the sum.
        assert_eq!(dual.counters().busy_cycles(), single.counters().cycles);
        let cost = CostModel::ascend910_like();
        let vdup = cost.issue_overhead + 2 * cost.vector_per_repeat;
        let mv = cost.issue_overhead + cost.move_cycles(2048);
        assert_eq!(single.counters().cycles, vdup + mv);
        assert_eq!(dual.counters().cycles, vdup.max(mv));
        assert_eq!(dual.counters().stall_cycles, 0);
    }

    #[test]
    fn dual_pipe_stalls_on_raw_hazard() {
        // move writes UB[0..256), vadd reads it: the vector pipe must
        // wait for the move to retire, and the wait is booked as stall.
        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::ub(0), 256)))
            .unwrap();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(256),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        )))
        .unwrap();
        let mut core = AiCore::new(CostModel::ascend910_like(), 4096);
        core.set_trace(TraceConfig::ON);
        core.run(&p).unwrap();

        let cost = core.cost();
        let mv = cost.issue_overhead + cost.move_cycles(256);
        let vadd = cost.issue_overhead + cost.vector_per_repeat;
        assert_eq!(core.counters().cycles, mv + vadd, "RAW chain serialises");
        assert_eq!(core.counters().stall_cycles, mv);
        let ev = &core.trace().events;
        assert_eq!(ev[1].start, mv, "vadd issues when the move retires");
        assert_eq!(ev[1].stall, mv);
        assert_eq!(
            ev[1].dep,
            Some(0),
            "RAW producer recorded for the flow arrow"
        );
        assert_eq!(ev[0].stall, 0);
        assert_eq!(ev[0].dep, None);
    }

    /// vadd reads UB[0..256); the following move overwrites the same
    /// range (WAR) from the other pipe.
    fn war_pair() -> Program {
        let mut p = Program::new();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(256),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        )))
        .unwrap();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::ub(0), 256)))
            .unwrap();
        p
    }

    #[test]
    fn dual_pipe_enforces_war_hazard_without_rename() {
        // With renaming off the move must wait for the read to retire
        // (WAR), despite running on the other pipe.
        let mut core = AiCore::new(CostModel::dual_pipe_no_rename(), 4096);
        core.load_gm(0, &[F16::ONE; 128]).unwrap();
        core.set_trace(TraceConfig::ON);
        core.run(&war_pair()).unwrap();
        let cost = core.cost();
        let vadd = cost.issue_overhead + cost.vector_per_repeat;
        let ev = &core.trace().events;
        assert_eq!(ev[1].start, vadd, "move waits out the overlapping read");
        assert_eq!(ev[1].stall, vadd);
        assert_eq!(ev[1].dep, None, "WAR is ordering, not a dataflow edge");
        assert_eq!(core.counters().renames, 0);
        assert_eq!(core.counters().rename_denied, 0);
    }

    #[test]
    fn dual_pipe_renames_war_hazard_away() {
        // Default model: the UB has headroom for a second version of the
        // span, so the move issues immediately into a rotated slot — no
        // stall, no rebooking, and the WAR edge never becomes an arrow.
        let mut core = AiCore::new(CostModel::ascend910_like(), 4096);
        core.load_gm(0, &[F16::ONE; 128]).unwrap();
        core.set_trace(TraceConfig::ON);
        core.run(&war_pair()).unwrap();
        let ev = &core.trace().events;
        assert_eq!(ev[1].start, 0, "rotated write issues immediately");
        assert_eq!(ev[1].stall, 0, "the WAR wait is eliminated, not rebooked");
        assert_eq!(ev[1].dep, None, "WAR is ordering, not a dataflow edge");
        assert_eq!(core.counters().stall_cycles, 0);
        assert_eq!(core.counters().renames, 1);
        assert_eq!(core.counters().rename_denied, 0);
    }

    #[test]
    fn dual_pipe_renames_waw_hazard_and_keeps_raw_edges() {
        // vdup writes UB[0..256) on the vector pipe; the move overwrites
        // the same span (WAW) from the MTE pipe and rotates past it. A
        // final vadd reads the span: its RAW edge points at the latest
        // program-order writer (the move) and conservatively waits for
        // every in-flight writer of the span.
        let mut core = AiCore::new(CostModel::ascend910_like(), 4096);
        core.load_gm(0, &[F16::ONE; 128]).unwrap();
        let mut p = Program::new();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Dup(F16::ZERO),
            Addr::ub(0),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        )))
        .unwrap();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::ub(0), 256)))
            .unwrap();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(512),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        )))
        .unwrap();
        core.set_trace(TraceConfig::ON);
        core.run(&p).unwrap();
        let ev = &core.trace().events;
        assert_eq!(ev[1].start, 0, "WAW write rotates and issues immediately");
        assert_eq!(core.counters().renames, 1);
        assert_eq!(
            ev[2].dep,
            Some(1),
            "the reader's arrow points at the latest program-order writer"
        );
        // Program order always wins functionally: the vadd sees the
        // move's data, not the vdup's zeros.
        assert_eq!(
            core.buffers().read_f16(BufferId::Ub, 512).unwrap().to_f32(),
            2.0
        );
    }

    #[test]
    fn rename_refuses_without_headroom_and_falls_back_to_stall() {
        // A 512-byte UB cannot hold a second 256-byte version next to
        // the 512 bytes the program already touches: the rotation is
        // refused (typed, counted) and the move takes the full WAR
        // stall — identical timing to the no-rename model.
        let caps = Capacities {
            ub: 512,
            ..Capacities::ASCEND910
        };
        let run = |cost: CostModel| {
            let mut core = AiCore::with_capacities(cost, caps, 4096);
            core.load_gm(0, &[F16::ONE; 128]).unwrap();
            core.set_trace(TraceConfig::ON);
            core.run(&war_pair()).unwrap();
            core
        };
        let renamed = run(CostModel::ascend910_like());
        let plain = run(CostModel::dual_pipe_no_rename());
        assert_eq!(renamed.counters().renames, 0);
        assert_eq!(renamed.counters().rename_denied, 1);
        assert_eq!(renamed.counters().cycles, plain.counters().cycles);
        assert_eq!(
            renamed.counters().stall_cycles,
            plain.counters().stall_cycles,
            "a refused rotation falls back to the ordinary WAR stall"
        );
        let (ev_r, ev_p) = (&renamed.trace().events, &plain.trace().events);
        assert_eq!(ev_r[1].start, ev_p[1].start);
        assert_eq!(ev_r[1].stall, ev_p[1].stall);
    }

    #[test]
    fn dual_pipe_programs_are_barriers() {
        // The same two independent instructions, but split across two
        // programs: the barrier forbids cross-program overlap.
        let pair = independent_pair();
        let mut split_a = Program::new();
        split_a.push(pair.instrs()[0].clone()).unwrap();
        let mut split_b = Program::new();
        split_b.push(pair.instrs()[1].clone()).unwrap();

        let mut fused = AiCore::new(CostModel::ascend910_like(), 4096);
        fused.run(&pair).unwrap();
        let mut split = AiCore::new(CostModel::ascend910_like(), 4096);
        split.run(&split_a).unwrap();
        split.run(&split_b).unwrap();
        assert!(fused.counters().cycles < split.counters().cycles);
        assert_eq!(
            split.counters().cycles,
            split.counters().busy_cycles(),
            "one instruction per program degenerates to serial timing"
        );
    }

    #[test]
    fn dual_pipe_never_exceeds_single_issue() {
        // Property on a mixed program: makespan <= serial sum, and both
        // models produce identical buffer contents.
        let data: Vec<F16> = (0..512).map(|i| F16::from_f32((i % 37) as f32)).collect();
        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::ub(0), 1024)))
            .unwrap();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Dup(F16::NEG_INFINITY),
            Addr::ub(2048),
            Addr::ub(2048),
            Addr::ub(2048),
            Mask::FULL,
            4,
        )))
        .unwrap();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Max,
            Addr::ub(2048),
            Addr::ub(0),
            Addr::ub(2048),
            Mask::FULL,
            4,
        )))
        .unwrap();
        p.push(Instr::Move(DataMove::new(
            Addr::ub(2048),
            Addr::gm(4096),
            1024,
        )))
        .unwrap();

        let mut dual = AiCore::new(CostModel::ascend910_like(), 8192);
        dual.load_gm(0, &data).unwrap();
        dual.run(&p).unwrap();
        let mut single = AiCore::new(CostModel::single_issue(), 8192);
        single.load_gm(0, &data).unwrap();
        single.run(&p).unwrap();

        assert_eq!(
            dual.read_gm(4096, 512).unwrap(),
            single.read_gm(4096, 512).unwrap(),
            "issue model must never change results"
        );
        assert!(dual.counters().cycles <= single.counters().cycles);
        assert!(dual.counters().cycles < single.counters().cycles);
        assert_eq!(dual.counters().busy_cycles(), single.counters().cycles);
        assert_eq!(dual.counters().issues, single.counters().issues);
    }
}
