//! The chip's memory-hierarchy stage: what concurrent cores share.
//!
//! The per-core simulation treats its MTE as a private pipe to global
//! memory, which is the right model for one core but a fiction at chip
//! scale: on the real device all 32 AI Cores draw their GM traffic
//! through one L2/HBM path, and implicit-convolution-style kernels are
//! memory-bandwidth-bound there (Zhou et al., arXiv 2110.03901). A
//! multi-core speedup measured without that shared path over-reports.
//!
//! [`MemoryModel`] makes the stage pluggable. The default,
//! [`MemoryModel::Independent`], preserves the legacy behaviour exactly
//! (every committed baseline and cost regression was measured under it).
//! [`MemoryModel::SharedBandwidth`] post-processes a chip run with a
//! deterministic *fluid* model: each core is summarised as a demand
//! stream — its pre-contention makespan `T_c` and GM byte volume `D_c`
//! spread uniformly over it — and the shared pipe's bandwidth is divided
//! max-min fairly among the cores still running. A core whose allocation
//! falls short of its demand progresses at the matching fraction of real
//! time; the extra completion time is booked per core as
//! [`HwCounters::contention_stalls`](crate::HwCounters::contention_stalls).
//!
//! The fluid summary deliberately avoids re-timing individual
//! instructions, so per-core counters, traces, and buffer contents are
//! untouched — contention only stretches each core's completion time,
//! which keeps the model deterministic, order-independent, and exactly
//! zero-cost when the aggregate demand fits the pipe.

/// How concurrent cores share the path to global memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryModel {
    /// Fully independent cores — the legacy fiction: every core sees its
    /// full MTE bandwidth regardless of what the others stream. The
    /// default for every constructor, so existing baselines are
    /// unchanged.
    Independent,
    /// All cores draw GM traffic through one shared L2/HBM pipe,
    /// allocated max-min fairly among the cores still running. A core's
    /// demand is capped by its own MTE peak
    /// ([`CostModel::move_bytes_per_cycle`](crate::CostModel)), so the
    /// pipe only binds once enough cores stream at once.
    SharedBandwidth {
        /// Total bytes per cycle the shared pipe sustains.
        bytes_per_cycle: u64,
    },
}

impl MemoryModel {
    /// An Ascend-910-like shared pipe: 256 B/cycle — eight times the
    /// 32 B/cycle per-core MTE peak, so up to eight saturating streams
    /// coexist free of charge and a 32-core all-streaming chip degrades
    /// by at most 4x.
    pub fn ascend910_hbm() -> MemoryModel {
        MemoryModel::SharedBandwidth {
            bytes_per_cycle: 256,
        }
    }
}

/// Per-core extra completion cycles under the shared-bandwidth fluid
/// model. `streams[c]` is core `c`'s demand summary: its pre-contention
/// completion time in cycles (dispatch included) and its GM byte volume.
/// `shared` is the pipe's total bytes/cycle, `per_core` each core's own
/// MTE peak (the demand cap).
///
/// Max-min fair-share fluid simulation: every core's demand rate is
/// `d_c = min(per_core, D_c / T_c)`; within each segment the pipe's
/// bandwidth is water-filled over the active cores, each progressing at
/// `r_c = alloc_c / d_c <= 1` virtual cycles per real cycle (cores with
/// no GM traffic run at full rate); the segment ends when the first core
/// finishes. At most `streams.len()` segments, all arithmetic in a fixed
/// order — deterministic by construction.
pub(crate) fn contention_stalls(streams: &[(u64, u64)], shared: u64, per_core: u64) -> Vec<u64> {
    let n = streams.len();
    let shared = shared.max(1) as f64;
    let per_core = per_core.max(1) as f64;
    // Demand rates, capped by the per-core MTE peak.
    let demand: Vec<f64> = streams
        .iter()
        .map(|&(t, bytes)| {
            if t == 0 {
                0.0
            } else {
                (bytes as f64 / t as f64).min(per_core)
            }
        })
        .collect();
    let mut remaining: Vec<f64> = streams.iter().map(|&(t, _)| t as f64).collect();
    let mut finish = vec![0.0f64; n];
    let mut active: Vec<usize> = (0..n).filter(|&i| remaining[i] > 0.0).collect();
    let mut now = 0.0f64;
    while !active.is_empty() {
        // Water-fill the pipe over the active demanders: repeatedly give
        // every stream below the fair share its full demand, then split
        // the leftover evenly among the rest.
        let mut rate = vec![1.0f64; n];
        let mut unsat: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&i| demand[i] > 0.0)
            .collect();
        let mut budget = shared;
        loop {
            if unsat.is_empty() {
                break;
            }
            let fair = budget / unsat.len() as f64;
            let (sated, rest): (Vec<usize>, Vec<usize>) =
                unsat.iter().partition(|&&i| demand[i] <= fair + 1e-12);
            if sated.is_empty() {
                for &i in &rest {
                    rate[i] = (fair / demand[i]).min(1.0);
                }
                break;
            }
            for &i in &sated {
                budget -= demand[i];
            }
            unsat = rest;
        }
        // Advance to the first finisher.
        let dt = active
            .iter()
            .map(|&i| remaining[i] / rate[i])
            .fold(f64::INFINITY, f64::min);
        now += dt;
        for &i in &active {
            remaining[i] -= dt * rate[i];
        }
        active.retain(|&i| {
            let done = remaining[i] <= 1e-6;
            if done {
                finish[i] = now;
            }
            !done
        });
    }
    streams
        .iter()
        .zip(&finish)
        .map(|(&(t, _), &f)| (f - t as f64).max(0.0).round() as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_contention_when_demand_fits_the_pipe() {
        // 4 cores each demanding 20 B/cyc against a 256 B/cyc pipe.
        let streams = vec![(1000, 20_000); 4];
        assert_eq!(contention_stalls(&streams, 256, 32), vec![0; 4]);
        // A lone core can never contend with itself.
        assert_eq!(contention_stalls(&[(500, 16_000)], 256, 32), vec![0]);
        // Idle cores report nothing.
        assert_eq!(contention_stalls(&[(0, 0)], 256, 32), vec![0]);
    }

    #[test]
    fn uniform_saturating_streams_split_the_pipe_evenly() {
        // 32 cores each at the 32 B/cyc per-core peak demand 1024 B/cyc
        // against a 256 B/cyc pipe: everyone runs at rate 1/4, so each
        // core takes 4x as long — 3x its makespan in stalls.
        let streams = vec![(1000, 32_000); 32];
        let stalls = contention_stalls(&streams, 256, 32);
        assert_eq!(stalls, vec![3000; 32]);
    }

    #[test]
    fn demand_is_capped_by_the_per_core_peak() {
        // A core cannot demand more than its own MTE sustains, no matter
        // how many bytes it moved: 8 such cores exactly fill the pipe.
        let streams = vec![(100, 1_000_000); 8];
        assert_eq!(contention_stalls(&streams, 256, 32), vec![0; 8]);
    }

    #[test]
    fn light_streams_are_not_taxed_for_heavy_neighbours() {
        // Max-min fairness: a 2 B/cyc stream among 31 saturating ones
        // gets its full demand (2 < 256/32 fair share) and finishes on
        // time; the heavy streams split the rest.
        let mut streams = vec![(1000, 32_000); 31];
        streams.push((1000, 2_000));
        let stalls = contention_stalls(&streams, 256, 32);
        assert_eq!(stalls[31], 0, "unsaturated stream rides free");
        assert!(stalls[..31].iter().all(|&s| s > 0));
        // Two fluid segments: while the light stream runs (its full 1000
        // cycles) the heavy ones share 254 B/cyc, progressing at
        // 254/(31*32) each; after it finishes they split the whole 256.
        let r1 = 254.0_f64 / (31.0 * 32.0);
        let r2 = 256.0_f64 / (31.0 * 32.0);
        let expect = ((1000.0 - 1000.0 * r1) / r2).round() as u64;
        assert!(stalls[..31].iter().all(|&s| s == expect), "{stalls:?}");
    }

    #[test]
    fn more_bandwidth_never_hurts() {
        let streams: Vec<(u64, u64)> = (0..6).map(|i| (500 + 100 * i, 10_000 * (i + 1))).collect();
        let mut prev: Option<u64> = None;
        for bw in [32u64, 64, 128, 256, 512] {
            let total: u64 = contention_stalls(&streams, bw, 32).iter().sum();
            if let Some(p) = prev {
                assert!(total <= p, "stalls must shrink as the pipe widens");
            }
            prev = Some(total);
        }
        assert_eq!(prev, Some(0), "a wide-enough pipe charges nothing");
    }

    #[test]
    fn compute_bound_cores_keep_running_while_streams_contend() {
        // One pure-compute core (no GM traffic) and two saturating
        // streams on a pipe with room for one: compute core unaffected.
        let streams = vec![(1000, 0), (1000, 32_000), (1000, 32_000)];
        let stalls = contention_stalls(&streams, 32, 32);
        assert_eq!(stalls[0], 0);
        assert_eq!(stalls[1], 1000);
        assert_eq!(stalls[2], 1000);
    }

    #[test]
    fn deterministic_across_calls() {
        let streams: Vec<(u64, u64)> = (0..32).map(|i| (1_000 + 37 * i, 5_000 + 991 * i)).collect();
        let a = contention_stalls(&streams, 256, 32);
        let b = contention_stalls(&streams, 256, 32);
        assert_eq!(a, b);
    }
}
