//! Buffer lifetime analysis: first-write/last-read live ranges.
//!
//! [`crate::buffers::BufferPeaks`] answers "how many bytes did a kernel
//! ever occupy"; this module answers *when* each byte span was alive. A
//! [`LiveRange`] opens at an instruction's write into a scratchpad span
//! and is extended by every later access that overlaps it; a fresh
//! (non-read-modify-write) store over the same bytes closes the old
//! range and opens a new one. The input is the same [`ExecInfo`]
//! read/write endpoints the dual-pipe scoreboard hazards on, so the
//! analysis costs nothing new at execution time and agrees with the
//! hazard model by construction.
//!
//! The payoff is the double-buffering diagnosis: with a single band slot
//! the trace shows one long range per region, reused back-to-back (every
//! band's load WAR-stalls on the previous band's reads); with ping-pong
//! (A/B) slots the ranges interleave across two offsets and the MTE load
//! of band `i + 1` overlaps the Vector reduction of band `i`. The Chrome
//! exporter renders each range as an async "live-range" slice per buffer
//! row ([`crate::trace::chrome_trace_json_with_lifetimes`]).
//!
//! Recording is gated with tracing ([`crate::trace::TraceConfig`]): an
//! untraced run pays nothing.

use crate::exec::{ExecInfo, MemSpan};
use dv_isa::BufferId;

/// One live range: a byte span in one scratchpad, from the cycle of its
/// producing write to the retirement of its last overlapping access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LiveRange {
    /// The scratchpad holding the span (never [`BufferId::Gm`]).
    pub buffer: BufferId,
    /// First byte of the span.
    pub start: usize,
    /// One past the last byte of the span.
    pub end: usize,
    /// Core-local cycle at which the producing write issued.
    pub first_write: u64,
    /// Core-local cycle at which the last overlapping access retired.
    pub last_use: u64,
    /// Version of the span: 0 for the first write into these bytes, then
    /// one more than the highest version the producing write killed.
    /// Under buffer-slot renaming a rotated write opens version `n + 1`
    /// while version `n` is still being read, so consecutive versions of
    /// one span overlapping in time are the renamer's signature in the
    /// trace.
    pub version: u64,
}

impl LiveRange {
    /// Bytes covered by the span.
    pub fn bytes(&self) -> usize {
        self.end - self.start
    }

    /// Cycles the span was live.
    pub fn cycles(&self) -> u64 {
        self.last_use - self.first_write
    }
}

/// The live ranges observed on one AI Core, in order of `first_write`.
#[derive(Clone, Debug, Default)]
pub struct BufferLifetimes {
    /// Physical core id (filled in by the chip; 0 for a lone core).
    pub core: usize,
    /// All closed ranges, ordered by opening cycle.
    pub ranges: Vec<LiveRange>,
}

impl BufferLifetimes {
    /// Ranges living in one buffer.
    pub fn of(&self, buffer: BufferId) -> impl Iterator<Item = &LiveRange> {
        self.ranges.iter().filter(move |r| r.buffer == buffer)
    }

    /// The largest number of ranges of `buffer` simultaneously live at
    /// any cycle — 2 on a double-buffered region, 1 on a single slot.
    pub fn peak_overlap(&self, buffer: BufferId) -> usize {
        let mut edges: Vec<(u64, i32)> = Vec::new();
        for r in self.of(buffer) {
            edges.push((r.first_write, 1));
            edges.push((r.last_use, -1));
        }
        // Close before open at the same cycle: touching ranges (a reuse
        // of the same slot) do not count as overlapping.
        edges.sort_by_key(|&(t, d)| (t, d));
        let (mut live, mut peak) = (0i32, 0i32);
        for (_, d) in edges {
            live += d;
            peak = peak.max(live);
        }
        peak.max(0) as usize
    }
}

/// Accumulates live ranges as instructions execute. Owned by the core's
/// run loop; drained into a [`BufferLifetimes`] at collection time.
#[derive(Clone, Debug, Default)]
pub(crate) struct LifetimeRecorder {
    active: Vec<LiveRange>,
    closed: Vec<LiveRange>,
}

impl LifetimeRecorder {
    /// Record one executed instruction's accesses. `start`/`finish` are
    /// its issue and retirement cycles from the issue model in effect.
    pub fn record(&mut self, info: &ExecInfo, start: u64, finish: u64) {
        for r in info.reads.iter().flatten() {
            self.touch(r, finish);
        }
        let Some(w) = info.write else { return };
        if w.buffer == BufferId::Gm {
            return;
        }
        // A write that overlaps one of the same instruction's reads is a
        // read-modify-write (Col2Im scatters into its destination plane):
        // it extends the existing range instead of opening a new one.
        let rmw = info.reads.iter().flatten().any(|r| r.overlaps(&w));
        if rmw && self.active.iter().any(|a| spans_overlap(a, &w)) {
            self.touch(&w, finish);
            return;
        }
        // A fresh store kills whatever lived there and opens a new range
        // one version above the highest one it displaced.
        let mut version = 0;
        let mut i = 0;
        while i < self.active.len() {
            if spans_overlap(&self.active[i], &w) {
                version = version.max(self.active[i].version + 1);
                self.closed.push(self.active.swap_remove(i));
            } else {
                i += 1;
            }
        }
        self.active.push(LiveRange {
            buffer: w.buffer,
            start: w.start,
            end: w.end,
            first_write: start,
            last_use: finish,
            version,
        });
    }

    /// Extend every active range an access overlaps.
    fn touch(&mut self, span: &MemSpan, finish: u64) {
        if span.buffer == BufferId::Gm {
            return;
        }
        for a in &mut self.active {
            if spans_overlap(a, span) {
                a.last_use = a.last_use.max(finish);
            }
        }
    }

    /// Drain everything recorded so far into a [`BufferLifetimes`],
    /// leaving the recorder empty.
    pub fn take(&mut self) -> BufferLifetimes {
        let mut ranges = std::mem::take(&mut self.closed);
        ranges.append(&mut self.active);
        ranges.sort_by_key(|r| (r.first_write, r.buffer, r.start));
        BufferLifetimes { core: 0, ranges }
    }
}

fn spans_overlap(r: &LiveRange, s: &MemSpan) -> bool {
    r.buffer == s.buffer && r.start < s.end && s.start < r.end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(buffer: BufferId, start: usize, end: usize) -> MemSpan {
        MemSpan { buffer, start, end }
    }

    fn info(reads: [Option<MemSpan>; 3], write: Option<MemSpan>) -> ExecInfo {
        ExecInfo {
            mnemonic: "test",
            unit: dv_isa::Unit::Vector,
            cycles: 0,
            repeat: 1,
            useful_lanes: 0,
            total_lanes: 0,
            src: None,
            dst: None,
            gm_bytes: 0,
            scratch_bytes: 0,
            reads,
            write,
        }
    }

    #[test]
    fn write_read_overwrite_produces_two_ranges() {
        let mut rec = LifetimeRecorder::default();
        let ub = |a, b| span(BufferId::Ub, a, b);
        // Write [0, 256) at cycle 0..10, read it at 10..20, overwrite at
        // 20..30, read again at 30..40.
        rec.record(&info([None; 3], Some(ub(0, 256))), 0, 10);
        rec.record(&info([Some(ub(0, 256)), None, None], None), 10, 20);
        rec.record(&info([None; 3], Some(ub(0, 256))), 20, 30);
        rec.record(&info([Some(ub(0, 256)), None, None], None), 30, 40);
        let lt = rec.take();
        assert_eq!(lt.ranges.len(), 2);
        assert_eq!((lt.ranges[0].first_write, lt.ranges[0].last_use), (0, 20));
        assert_eq!((lt.ranges[1].first_write, lt.ranges[1].last_use), (20, 40));
        assert_eq!(lt.peak_overlap(BufferId::Ub), 1);
        assert_eq!(
            (lt.ranges[0].version, lt.ranges[1].version),
            (0, 1),
            "an overwrite opens the next version of the span"
        );
    }

    #[test]
    fn renamed_writes_produce_overlapping_versions() {
        // The renamer's trace signature: a rotated write issues at cycle
        // 12 while the older version's last read retires at 25, so the
        // two versions of the span overlap in time.
        let mut rec = LifetimeRecorder::default();
        let ub = |a, b| span(BufferId::Ub, a, b);
        rec.record(&info([None; 3], Some(ub(0, 256))), 0, 10);
        rec.record(&info([Some(ub(0, 256)), None, None], None), 10, 25);
        rec.record(&info([None; 3], Some(ub(0, 256))), 12, 22);
        let lt = rec.take();
        assert_eq!(lt.ranges.len(), 2);
        assert_eq!((lt.ranges[0].version, lt.ranges[1].version), (0, 1));
        assert_eq!(
            lt.peak_overlap(BufferId::Ub),
            2,
            "two live versions of one span"
        );
    }

    #[test]
    fn rmw_extends_instead_of_killing() {
        let mut rec = LifetimeRecorder::default();
        let ub = |a, b| span(BufferId::Ub, a, b);
        rec.record(&info([None; 3], Some(ub(0, 512))), 0, 10);
        // Col2Im-style RMW: reads source and destination plane, writes
        // the destination plane.
        rec.record(
            &info(
                [Some(ub(1024, 1536)), Some(ub(0, 512)), None],
                Some(ub(0, 512)),
            ),
            10,
            30,
        );
        let lt = rec.take();
        let dst: Vec<_> = lt.of(BufferId::Ub).filter(|r| r.start == 0).collect();
        assert_eq!(dst.len(), 1, "RMW must not split the destination range");
        assert_eq!((dst[0].first_write, dst[0].last_use), (0, 30));
    }

    #[test]
    fn gm_spans_are_ignored() {
        let mut rec = LifetimeRecorder::default();
        rec.record(&info([None; 3], Some(span(BufferId::Gm, 0, 256))), 0, 10);
        assert!(rec.take().ranges.is_empty());
    }

    #[test]
    fn ping_pong_slots_overlap_in_time() {
        let mut rec = LifetimeRecorder::default();
        let ub = |a, b| span(BufferId::Ub, a, b);
        // Slot A live 0..30, slot B live 10..50, next band back in A.
        rec.record(&info([None; 3], Some(ub(0, 256))), 0, 10);
        rec.record(&info([None; 3], Some(ub(256, 512))), 10, 20);
        rec.record(&info([Some(ub(0, 256)), None, None], None), 20, 30);
        rec.record(&info([Some(ub(256, 512)), None, None], None), 40, 50);
        rec.record(&info([None; 3], Some(ub(0, 256))), 35, 45);
        let lt = rec.take();
        assert_eq!(lt.ranges.len(), 3);
        assert_eq!(lt.peak_overlap(BufferId::Ub), 2);
    }
}
