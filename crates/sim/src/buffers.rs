//! The AI Core's scratch-pad memories.
//!
//! Each buffer is a fixed-capacity byte array with its own address space
//! (paper, Section III-A: scratch-pads need no tags or coherence, but the
//! program must manage placement and consistency explicitly). Out-of-range
//! accesses are hard errors — the "failure injection" surface of the test
//! suite.
//!
//! Element conventions: every buffer holds f16 elements **except L0C**,
//! which holds f32 accumulators (systolic matrix units accumulate f16
//! products at full precision; the precision drop to f16 happens on the
//! L0C -> UB drain path, as on real hardware).

use core::fmt;
use dv_fp16::F16;
use dv_isa::BufferId;

use crate::cost::Capacities;

/// Simulation errors.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// Access outside a buffer's capacity.
    OutOfBounds {
        /// buffer accessed
        buffer: BufferId,
        /// starting byte offset
        offset: usize,
        /// access length in bytes
        len: usize,
        /// the buffer's capacity
        capacity: usize,
    },
    /// f16 accesses must be 2-byte aligned; f32 (L0C) 4-byte aligned.
    Misaligned {
        /// buffer accessed
        buffer: BufferId,
        /// offending byte offset
        offset: usize,
        /// required alignment
        align: usize,
    },
    /// Instruction-level validation failure.
    Isa(dv_isa::IsaError),
    /// An element-typed access hit the wrong buffer (e.g. f16 read of
    /// L0C).
    WrongElementType {
        /// buffer accessed
        buffer: BufferId,
        /// what the access expected
        expected: &'static str,
    },
    /// Two programs of one chip run declared overlapping GM write
    /// ranges — a lowering bug (shards must partition the output), caught
    /// before any core executes.
    GmOverlap {
        /// first program index
        prog_a: usize,
        /// its overlapping byte range `[start, end)`
        range_a: (usize, usize),
        /// second program index
        prog_b: usize,
        /// its overlapping byte range `[start, end)`
        range_b: (usize, usize),
    },
    /// A program's *executed* GM writes (observed from the instruction
    /// stream's `ExecInfo` endpoints) fell outside the ranges its static
    /// scan declared — the merge-back would silently drop the bytes, so
    /// the run fails instead.
    UndeclaredGmWrite {
        /// offending program index
        program: usize,
        /// observed write span `[start, end)` in GM bytes
        observed: (usize, usize),
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds {
                buffer,
                offset,
                len,
                capacity,
            } => write!(
                f,
                "out of bounds: {buffer}+0x{offset:x}..+{len} exceeds capacity {capacity}"
            ),
            SimError::Misaligned {
                buffer,
                offset,
                align,
            } => write!(
                f,
                "misaligned: {buffer}+0x{offset:x} requires align {align}"
            ),
            SimError::Isa(e) => write!(f, "isa: {e}"),
            SimError::WrongElementType { buffer, expected } => {
                write!(f, "{buffer} does not hold {expected} elements")
            }
            SimError::GmOverlap {
                prog_a,
                range_a,
                prog_b,
                range_b,
            } => write!(
                f,
                "programs {prog_a} and {prog_b} write overlapping GM ranges \
                 [{:#x},{:#x}) and [{:#x},{:#x})",
                range_a.0, range_a.1, range_b.0, range_b.1
            ),
            SimError::UndeclaredGmWrite { program, observed } => write!(
                f,
                "program {program} wrote GM [{:#x},{:#x}) outside its declared \
                 merge-back ranges",
                observed.0, observed.1
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<dv_isa::IsaError> for SimError {
    fn from(e: dv_isa::IsaError) -> Self {
        SimError::Isa(e)
    }
}

/// Display/iteration order of the buffers tracked by [`BufferPeaks`].
const TRACKED: [BufferId; 6] = [
    BufferId::Gm,
    BufferId::L1,
    BufferId::L0A,
    BufferId::L0B,
    BufferId::L0C,
    BufferId::Ub,
];

fn peak_index(id: BufferId) -> usize {
    match id {
        BufferId::Gm => 0,
        BufferId::L1 => 1,
        BufferId::L0A => 2,
        BufferId::L0B => 3,
        BufferId::L0C => 4,
        BufferId::Ub => 5,
    }
}

/// Occupancy high-water marks: for each buffer, the highest byte offset
/// ever written plus the write's length. Scratchpads have no allocator —
/// the lowering layer lays data out manually — so the peak written end
/// is the tightest capacity the kernel actually needed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferPeaks {
    peaks: [usize; 6],
}

impl BufferPeaks {
    /// Peak occupancy of one buffer in bytes (0 if never written).
    pub fn of(&self, id: BufferId) -> usize {
        self.peaks[peak_index(id)]
    }

    /// All `(buffer, peak_bytes)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (BufferId, usize)> + '_ {
        TRACKED.iter().map(|&id| (id, self.of(id)))
    }

    /// Pointwise maximum with another peak set (used when merging cores).
    pub fn merge_max(&mut self, other: &BufferPeaks) {
        for (p, o) in self.peaks.iter_mut().zip(other.peaks) {
            *p = (*p).max(o);
        }
    }

    fn note(&mut self, id: BufferId, end: usize) {
        let p = &mut self.peaks[peak_index(id)];
        *p = (*p).max(end);
    }
}

/// All memories reachable from one AI Core, including its view of global
/// memory.
#[derive(Clone, Debug)]
pub struct BufferSet {
    gm: Vec<u8>,
    l1: Vec<u8>,
    l0a: Vec<u8>,
    l0b: Vec<u8>,
    l0c: Vec<u8>,
    ub: Vec<u8>,
    peaks: BufferPeaks,
}

impl BufferSet {
    /// Allocate scratchpads at the given capacities plus a `gm_bytes`-byte
    /// global memory image. All memories are zero-initialised.
    pub fn new(caps: Capacities, gm_bytes: usize) -> BufferSet {
        BufferSet {
            gm: vec![0; gm_bytes],
            l1: vec![0; caps.l1],
            l0a: vec![0; caps.l0a],
            l0b: vec![0; caps.l0b],
            l0c: vec![0; caps.l0c],
            ub: vec![0; caps.ub],
            peaks: BufferPeaks::default(),
        }
    }

    /// Occupancy high-water marks accumulated over all writes so far.
    pub fn peaks(&self) -> &BufferPeaks {
        &self.peaks
    }

    /// Capacity in bytes of one buffer.
    pub fn capacity(&self, id: BufferId) -> usize {
        self.raw(id).len()
    }

    /// Raw byte view of one buffer — the `Sliced` executor fast paths
    /// read operands through this after validating the full span once.
    pub(crate) fn raw(&self, id: BufferId) -> &Vec<u8> {
        match id {
            BufferId::Gm => &self.gm,
            BufferId::L1 => &self.l1,
            BufferId::L0A => &self.l0a,
            BufferId::L0B => &self.l0b,
            BufferId::L0C => &self.l0c,
            BufferId::Ub => &self.ub,
        }
    }

    /// Mutable raw byte view. The fast paths `mem::take` the destination
    /// buffer through this (so source buffers stay readable), run the
    /// unchecked element loop, and put it back — callers must restore
    /// the vector before returning.
    pub(crate) fn raw_mut(&mut self, id: BufferId) -> &mut Vec<u8> {
        match id {
            BufferId::Gm => &mut self.gm,
            BufferId::L1 => &mut self.l1,
            BufferId::L0A => &mut self.l0a,
            BufferId::L0B => &mut self.l0b,
            BufferId::L0C => &mut self.l0c,
            BufferId::Ub => &mut self.ub,
        }
    }

    /// Record a write high-water mark directly — the fast paths write
    /// through raw slices (bypassing [`BufferSet::write_f16`]), so they
    /// note the peak once per instruction with the maximum written end,
    /// which equals the running maximum the per-element path would have
    /// accumulated.
    pub(crate) fn note_peak(&mut self, id: BufferId, end: usize) {
        self.peaks.note(id, end);
    }

    fn check(&self, id: BufferId, offset: usize, len: usize, align: usize) -> Result<(), SimError> {
        let cap = self.capacity(id);
        if !offset.is_multiple_of(align) {
            return Err(SimError::Misaligned {
                buffer: id,
                offset,
                align,
            });
        }
        if offset.checked_add(len).is_none_or(|end| end > cap) {
            return Err(SimError::OutOfBounds {
                buffer: id,
                offset,
                len,
                capacity: cap,
            });
        }
        Ok(())
    }

    /// Read one f16 element at a byte offset.
    pub fn read_f16(&self, id: BufferId, offset: usize) -> Result<F16, SimError> {
        if id == BufferId::L0C {
            return Err(SimError::WrongElementType {
                buffer: id,
                expected: "f16",
            });
        }
        self.check(id, offset, 2, 2)?;
        let b = self.raw(id);
        Ok(F16::from_bits(u16::from_le_bytes([
            b[offset],
            b[offset + 1],
        ])))
    }

    /// Write one f16 element at a byte offset.
    pub fn write_f16(&mut self, id: BufferId, offset: usize, v: F16) -> Result<(), SimError> {
        if id == BufferId::L0C {
            return Err(SimError::WrongElementType {
                buffer: id,
                expected: "f16",
            });
        }
        self.check(id, offset, 2, 2)?;
        let bytes = v.to_bits().to_le_bytes();
        self.peaks.note(id, offset + 2);
        let b = self.raw_mut(id);
        b[offset] = bytes[0];
        b[offset + 1] = bytes[1];
        Ok(())
    }

    /// Read one f32 accumulator from L0C.
    pub fn read_f32_l0c(&self, offset: usize) -> Result<f32, SimError> {
        self.check(BufferId::L0C, offset, 4, 4)?;
        let b = &self.l0c;
        Ok(f32::from_le_bytes([
            b[offset],
            b[offset + 1],
            b[offset + 2],
            b[offset + 3],
        ]))
    }

    /// Write one f32 accumulator to L0C.
    pub fn write_f32_l0c(&mut self, offset: usize, v: f32) -> Result<(), SimError> {
        self.check(BufferId::L0C, offset, 4, 4)?;
        self.peaks.note(BufferId::L0C, offset + 4);
        self.l0c[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Bulk byte copy between buffers (the MTE's work). Overlapping
    /// same-buffer copies are copied through a temporary, like a DMA
    /// engine with a store queue.
    pub fn copy(
        &mut self,
        src: BufferId,
        src_off: usize,
        dst: BufferId,
        dst_off: usize,
        len: usize,
    ) -> Result<(), SimError> {
        self.check(src, src_off, len, 1)?;
        self.check(dst, dst_off, len, 1)?;
        self.peaks.note(dst, dst_off + len);
        if src == dst {
            let buf = self.raw_mut(src);
            buf.copy_within(src_off..src_off + len, dst_off);
        } else {
            // Split borrows: temporaries avoid unsafe double-borrow.
            let tmp = self.raw(src)[src_off..src_off + len].to_vec();
            self.raw_mut(dst)[dst_off..dst_off + len].copy_from_slice(&tmp);
        }
        Ok(())
    }

    /// Load a slice of f16 values into a buffer starting at a byte
    /// offset — test/driver convenience.
    pub fn load_f16_slice(
        &mut self,
        id: BufferId,
        offset: usize,
        data: &[F16],
    ) -> Result<(), SimError> {
        if id == BufferId::L0C {
            return Err(SimError::WrongElementType {
                buffer: id,
                expected: "f16",
            });
        }
        let bytes = dv_fp16::as_bytes(data);
        self.check(id, offset, bytes.len(), 2)?;
        self.peaks.note(id, offset + bytes.len());
        self.raw_mut(id)[offset..offset + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Read `len` f16 values from a buffer starting at a byte offset.
    pub fn read_f16_slice(
        &self,
        id: BufferId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<F16>, SimError> {
        if id == BufferId::L0C {
            return Err(SimError::WrongElementType {
                buffer: id,
                expected: "f16",
            });
        }
        self.check(id, offset, len * 2, 2)?;
        let b = self.raw(id);
        Ok((0..len)
            .map(|i| {
                let o = offset + i * 2;
                F16::from_bits(u16::from_le_bytes([b[o], b[o + 1]]))
            })
            .collect())
    }

    /// Direct byte view of global memory (for the chip-level merge of
    /// per-core writes).
    pub fn gm_bytes(&self) -> &[u8] {
        &self.gm
    }

    /// Mutable byte view of global memory.
    pub fn gm_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.gm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BufferSet {
        BufferSet::new(
            Capacities {
                l1: 128,
                l0a: 64,
                l0b: 64,
                l0c: 64,
                ub: 128,
            },
            256,
        )
    }

    #[test]
    fn f16_round_trip() {
        let mut b = small();
        b.write_f16(BufferId::Ub, 10, F16::from_f32(1.5)).unwrap();
        assert_eq!(b.read_f16(BufferId::Ub, 10).unwrap().to_f32(), 1.5);
    }

    #[test]
    fn zero_initialised() {
        let b = small();
        assert_eq!(b.read_f16(BufferId::L1, 0).unwrap(), F16::ZERO);
        assert_eq!(b.read_f32_l0c(0).unwrap(), 0.0);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut b = small();
        assert!(matches!(
            b.read_f16(BufferId::Ub, 128),
            Err(SimError::OutOfBounds { .. })
        ));
        assert!(matches!(
            b.write_f16(BufferId::Ub, 127, F16::ZERO),
            Err(SimError::Misaligned { .. }) | Err(SimError::OutOfBounds { .. })
        ));
        assert!(matches!(b.write_f16(BufferId::Ub, 126, F16::ZERO), Ok(())));
        assert!(matches!(
            b.copy(BufferId::Gm, 200, BufferId::L1, 0, 100),
            Err(SimError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn misalignment_detected() {
        let b = small();
        assert!(matches!(
            b.read_f16(BufferId::Ub, 1),
            Err(SimError::Misaligned { align: 2, .. })
        ));
        assert!(matches!(
            b.read_f32_l0c(2),
            Err(SimError::Misaligned { align: 4, .. })
        ));
    }

    #[test]
    fn l0c_is_f32_only() {
        let mut b = small();
        assert!(matches!(
            b.read_f16(BufferId::L0C, 0),
            Err(SimError::WrongElementType { .. })
        ));
        assert!(matches!(
            b.write_f16(BufferId::L0C, 0, F16::ZERO),
            Err(SimError::WrongElementType { .. })
        ));
        b.write_f32_l0c(4, 2.5).unwrap();
        assert_eq!(b.read_f32_l0c(4).unwrap(), 2.5);
    }

    #[test]
    fn copy_between_buffers() {
        let mut b = small();
        b.load_f16_slice(BufferId::Gm, 0, &[F16::ONE, F16::from_f32(2.0)])
            .unwrap();
        b.copy(BufferId::Gm, 0, BufferId::L1, 4, 4).unwrap();
        assert_eq!(b.read_f16(BufferId::L1, 4).unwrap(), F16::ONE);
        assert_eq!(b.read_f16(BufferId::L1, 6).unwrap().to_f32(), 2.0);
    }

    #[test]
    fn overlapping_same_buffer_copy() {
        let mut b = small();
        let vals: Vec<F16> = (0..8).map(|i| F16::from_f32(i as f32)).collect();
        b.load_f16_slice(BufferId::Ub, 0, &vals).unwrap();
        // shift right by one element, overlapping
        b.copy(BufferId::Ub, 0, BufferId::Ub, 2, 14).unwrap();
        let out = b.read_f16_slice(BufferId::Ub, 2, 7).unwrap();
        let expect: Vec<F16> = (0..7).map(|i| F16::from_f32(i as f32)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn peaks_track_highest_written_end() {
        let mut b = small();
        assert_eq!(b.peaks().of(BufferId::Ub), 0);
        b.write_f16(BufferId::Ub, 10, F16::ONE).unwrap();
        assert_eq!(b.peaks().of(BufferId::Ub), 12);
        b.write_f16(BufferId::Ub, 2, F16::ONE).unwrap();
        assert_eq!(b.peaks().of(BufferId::Ub), 12, "lower writes keep the peak");
        b.copy(BufferId::Ub, 0, BufferId::L1, 20, 8).unwrap();
        assert_eq!(b.peaks().of(BufferId::L1), 28);
        b.write_f32_l0c(8, 1.0).unwrap();
        assert_eq!(b.peaks().of(BufferId::L0C), 12);
        // Failed writes do not move the peak.
        assert!(b.write_f16(BufferId::Ub, 1000, F16::ONE).is_err());
        assert_eq!(b.peaks().of(BufferId::Ub), 12);

        let mut other = BufferPeaks::default();
        other.note(BufferId::Ub, 100);
        let mut merged = *b.peaks();
        merged.merge_max(&other);
        assert_eq!(merged.of(BufferId::Ub), 100);
        assert_eq!(merged.of(BufferId::L1), 28);
        assert_eq!(merged.iter().count(), 6);
    }

    #[test]
    fn slice_round_trip() {
        let mut b = small();
        let vals: Vec<F16> = (0..16).map(|i| F16::from_f32(i as f32 * 0.5)).collect();
        b.load_f16_slice(BufferId::Ub, 32, &vals).unwrap();
        assert_eq!(b.read_f16_slice(BufferId::Ub, 32, 16).unwrap(), vals);
    }
}
