//! Hardware counters.
//!
//! "The cycle count numbers were obtained using the hardware counters of
//! the chip" (paper, Section VI). The simulator's counters additionally
//! expose the decomposition the paper reasons about: issue counts per
//! mnemonic, per-unit cycles, and vector-lane utilization.

use std::collections::BTreeMap;

// The unit ↔ instruction mapping is architectural, so it lives in the ISA
// crate; re-exported here for backwards compatibility.
pub use dv_isa::Unit;

/// Cycle and event counters for one program execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HwCounters {
    /// Wall-clock cycles: under the single-issue model this equals
    /// [`HwCounters::busy_cycles`] (every instruction serialises); under
    /// the dual-pipe model it is the makespan over both pipes, which is
    /// never larger.
    pub cycles: u64,
    /// Cycles an issue pipe sat idle waiting on a scoreboard hazard
    /// (always 0 under the single-issue model).
    pub stall_cycles: u64,
    /// Stall cycles attributed to each issue pipe (index 0 = MTE/SCU,
    /// index 1 = Vector/Cube — see [`crate::pipe_of`]). Invariant:
    /// `pipe_stalls[0] + pipe_stalls[1] == stall_cycles`, because every
    /// instruction's wait is booked against exactly one pipe even when it
    /// hits several hazards at once.
    pub pipe_stalls: [u64; 2],
    /// Cycles attributed to each unit (issue overhead included).
    pub unit_cycles: BTreeMap<Unit, u64>,
    /// Instruction issues per mnemonic.
    pub issues: BTreeMap<&'static str, u64>,
    /// Enabled vector lanes summed over all vector repeat iterations.
    pub vector_useful_lanes: u64,
    /// Total vector lane slots (128 x repeats) over all vector
    /// instructions — the denominator of utilization.
    pub vector_total_lanes: u64,
    /// Bytes read from / written to global memory.
    pub gm_bytes: u64,
    /// Bytes moved between private buffers (including the Im2Col and
    /// Col2Im traffic).
    pub scratch_bytes: u64,
    /// Writers issued early into a rotated scratchpad slot, bypassing a
    /// WAR/WAW hazard (dual-pipe model with `CostModel::rename` only;
    /// always 0 otherwise).
    pub renames: u64,
    /// Rotations refused for lack of physical headroom — the writer fell
    /// back to the full WAR/WAW stall (never silent corruption).
    pub rename_denied: u64,
    /// Cycles this core's MTE streams were slowed by *other* cores
    /// drawing on the shared L2/HBM path (booked by the chip's
    /// [`crate::chip::MemoryModel`] after all cores join; always 0 under
    /// [`crate::chip::MemoryModel::Independent`] and on single-core
    /// runs). Unlike `stall_cycles` this is not an intra-core scoreboard
    /// wait: it extends the core's completion time past
    /// [`HwCounters::cycles`] without belonging to any one instruction.
    pub contention_stalls: u64,
    /// Auto-tuner mispredictions: the dispatched algorithm's *measured*
    /// cycles exceeded a certified lower bound of an alternative the
    /// tuner rejected — the predicted win could not be certified, and the
    /// doubt is surfaced here rather than silently dropped (a zero count
    /// *proves* the tuned run was no slower than any lowerable
    /// alternative; a nonzero count means an alternative's floor sits
    /// below the measured cycles, which casts doubt on the choice without
    /// necessarily meaning the alternative would actually have run
    /// faster). Booked by the engine after the run, like
    /// `contention_stalls`; always 0 when auto-tuning is off.
    pub tuner_mispredicted: u64,
    /// Auto-tuner fallbacks: the predicted winner could not be lowered
    /// (e.g. a batched fold that does not fit) and the engine ran the
    /// next-ranked algorithm instead — a typed decline in the spirit of
    /// `rename_denied`, not a silent substitution.
    pub tuner_fallbacks: u64,
}

impl HwCounters {
    /// Record an instruction: its mnemonic, unit, and cycle charge.
    /// Advances the wall clock by the full charge — single-issue timing.
    pub fn record(&mut self, mnemonic: &'static str, unit: Unit, cycles: u64) {
        self.cycles += cycles;
        self.record_busy(mnemonic, unit, cycles);
    }

    /// Record an instruction's work without advancing the wall clock —
    /// the dual-pipe scheduler charges unit busy time here and sets
    /// [`HwCounters::cycles`] from the pipe makespan itself.
    pub fn record_busy(&mut self, mnemonic: &'static str, unit: Unit, cycles: u64) {
        *self.unit_cycles.entry(unit).or_default() += cycles;
        *self.issues.entry(mnemonic).or_default() += 1;
    }

    /// Total unit-busy cycles — the sum of per-instruction charges. In
    /// single-issue mode this equals [`HwCounters::cycles`]; in dual-pipe
    /// mode it is what the per-instruction trace durations sum to.
    pub fn busy_cycles(&self) -> u64 {
        self.unit_cycles.values().sum()
    }

    /// Record vector-lane activity.
    pub fn record_lanes(&mut self, useful: u64, total: u64) {
        self.vector_useful_lanes += useful;
        self.vector_total_lanes += total;
    }

    /// Vector-lane utilization in [0, 1] — the paper's first performance
    /// factor made measurable.
    pub fn vector_utilization(&self) -> f64 {
        if self.vector_total_lanes == 0 {
            0.0
        } else {
            self.vector_useful_lanes as f64 / self.vector_total_lanes as f64
        }
    }

    /// Total instruction issues.
    pub fn total_issues(&self) -> u64 {
        self.issues.values().sum()
    }

    /// Issues of one mnemonic.
    pub fn issues_of(&self, mnemonic: &str) -> u64 {
        self.issues.get(mnemonic).copied().unwrap_or(0)
    }

    /// Cycles attributed to one unit.
    pub fn cycles_of(&self, unit: Unit) -> u64 {
        self.unit_cycles.get(&unit).copied().unwrap_or(0)
    }

    /// Merge another counter set into this one (used when a logical
    /// operator runs as several tiled programs on one core).
    pub fn merge(&mut self, other: &HwCounters) {
        self.cycles += other.cycles;
        self.stall_cycles += other.stall_cycles;
        self.pipe_stalls[0] += other.pipe_stalls[0];
        self.pipe_stalls[1] += other.pipe_stalls[1];
        for (u, c) in &other.unit_cycles {
            *self.unit_cycles.entry(*u).or_default() += c;
        }
        for (m, c) in &other.issues {
            *self.issues.entry(m).or_default() += c;
        }
        self.vector_useful_lanes += other.vector_useful_lanes;
        self.vector_total_lanes += other.vector_total_lanes;
        self.gm_bytes += other.gm_bytes;
        self.scratch_bytes += other.scratch_bytes;
        self.renames += other.renames;
        self.rename_denied += other.rename_denied;
        self.contention_stalls += other.contention_stalls;
        self.tuner_mispredicted += other.tuner_mispredicted;
        self.tuner_fallbacks += other.tuner_fallbacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut c = HwCounters::default();
        c.record("vmax", Unit::Vector, 10);
        c.record("vmax", Unit::Vector, 5);
        c.record("im2col", Unit::Scu, 7);
        assert_eq!(c.cycles, 22);
        assert_eq!(c.issues_of("vmax"), 2);
        assert_eq!(c.issues_of("im2col"), 1);
        assert_eq!(c.cycles_of(Unit::Vector), 15);
        assert_eq!(c.cycles_of(Unit::Scu), 7);
        assert_eq!(c.total_issues(), 3);
        assert_eq!(c.busy_cycles(), c.cycles);
    }

    #[test]
    fn record_busy_leaves_wall_clock_alone() {
        let mut c = HwCounters::default();
        c.record_busy("im2col", Unit::Scu, 40);
        c.record_busy("vmax", Unit::Vector, 17);
        assert_eq!(c.cycles, 0, "busy recording must not advance the clock");
        assert_eq!(c.busy_cycles(), 57);
        assert_eq!(c.issues_of("im2col"), 1);
        c.cycles = 40; // scheduler sets the makespan
        c.stall_cycles = 3;
        let mut merged = HwCounters::default();
        merged.merge(&c);
        merged.merge(&c);
        assert_eq!(merged.cycles, 80);
        assert_eq!(merged.stall_cycles, 6);
        assert_eq!(merged.busy_cycles(), 114);
    }

    #[test]
    fn utilization() {
        let mut c = HwCounters::default();
        assert_eq!(c.vector_utilization(), 0.0);
        c.record_lanes(16, 128);
        assert!((c.vector_utilization() - 0.125).abs() < 1e-12);
        c.record_lanes(128, 128);
        assert!((c.vector_utilization() - (144.0 / 256.0)).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = HwCounters::default();
        a.record("vadd", Unit::Vector, 3);
        a.record_lanes(16, 128);
        a.gm_bytes = 100;
        let mut b = HwCounters::default();
        b.record("vadd", Unit::Vector, 4);
        b.record("col2im", Unit::Vector, 9);
        b.record_lanes(128, 128);
        b.scratch_bytes = 50;
        b.contention_stalls = 9;
        b.tuner_mispredicted = 2;
        b.tuner_fallbacks = 1;
        a.merge(&b);
        assert_eq!(a.cycles, 16);
        assert_eq!(a.contention_stalls, 9);
        assert_eq!(a.tuner_mispredicted, 2);
        assert_eq!(a.tuner_fallbacks, 1);
        assert_eq!(a.issues_of("vadd"), 2);
        assert_eq!(a.issues_of("col2im"), 1);
        assert_eq!(a.vector_total_lanes, 256);
        assert_eq!(a.gm_bytes, 100);
        assert_eq!(a.scratch_bytes, 50);
    }
}
