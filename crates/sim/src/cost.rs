//! The cycle cost model.
//!
//! Every charge the simulator makes is a field of [`CostModel`], so
//! experiments can ablate individual mechanisms (`repro -- ablate` sweeps
//! issue overhead and mask behaviour to decompose the paper's speedups).
//!
//! The two "performance factors" of Section V map to the model like this:
//!
//! 1. *Mask saturation* — a vector repeat iteration costs
//!    [`CostModel::vector_per_repeat`] cycles **regardless of how many of
//!    the 128 mask lanes are enabled**. A kernel that can only enable the
//!    16 C0 lanes therefore needs 8x the repeats (or 8x the instructions)
//!    for the same useful work.
//! 2. *Repeat amortisation* — every instruction pays
//!    [`CostModel::issue_overhead`] once, covering decode, the scalar
//!    unit's address arithmetic, and the pipeline barrier between
//!    dependent vector instructions. A hardware repeat reissues without
//!    paying it again, so "a single instruction should operate over an
//!    entire tensor (or tile)".

/// How an AI Core dispatches instructions to its functional units.
///
/// The real DaVinci core decodes in order but hands instructions to
/// per-unit issue queues, so an MTE/SCU load can run while the Vector
/// Unit computes on previously-loaded data — exactly the overlap the
/// paper's `Im2Col` pipeline exploits. The simulator models both the
/// idealised serial machine (every instruction waits for the previous
/// one) and the two-queue machine with a hazard scoreboard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IssueModel {
    /// Strictly serial: each instruction issues when the previous one
    /// retires. This is the PR 1 model; cycle totals equal the sum of
    /// per-instruction charges by construction.
    SingleIssue,
    /// Two in-order pipes — MTE/SCU (`mte_move`, `im2col`) on one,
    /// Vector/Cube (`vmax`, `vadd`, `col2im`, `cube_mmad`) on the other —
    /// synchronised only by a per-buffer byte-range scoreboard enforcing
    /// RAW/WAR/WAW hazards. Cycle totals are the makespan, which is never
    /// larger than the single-issue sum.
    #[default]
    DualPipe,
}

/// How the *host* executes the functional simulation. Purely a
/// host-side choice: every backend computes the same f16 bytes, charges
/// the same cycles through [`CostModel::instr_cycles`], and books the
/// same counters, peaks, and traces — the differential test wall
/// (`backend_is_bit_identical`) and the host-throughput gate both
/// enforce it. Only wall-clock time on the machine running the
/// simulator changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The reference interpreter: every f16 element goes through the
    /// `Result`-checked [`crate::buffers::BufferSet::read_f16`] /
    /// `write_f16` path, and the chip runs its cores sequentially.
    /// Slowest, and the semantics oracle the other backends are
    /// differentially tested against.
    Scalar,
    /// Each executor validates every operand's full byte span once per
    /// instruction, then runs the element loop over raw slices with no
    /// per-element checks. Instructions whose conservative span
    /// validation declines (an out-of-range operand, an odd stride, an
    /// f16 view of L0C) fall back to the `Scalar` interpreter so error
    /// values and partial-write effects stay bit-identical. Cores still
    /// run sequentially.
    Sliced,
    /// `Sliced` element loops plus host threads across the chip's
    /// independent cores in [`crate::chip::Chip::run`] (each core owns a
    /// private buffer set and GM image, so core-level parallelism never
    /// reorders anything observable). The default: it is the behaviour
    /// the chip has always had, with the fast executors underneath.
    #[default]
    Threaded,
}

impl Backend {
    /// All backends, `Scalar` (the oracle) first.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Sliced, Backend::Threaded];

    /// Stable lowercase name (`scalar` / `sliced` / `threaded`).
    pub const fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sliced => "sliced",
            Backend::Threaded => "threaded",
        }
    }

    /// Parse a backend name as accepted by `--backend` flags.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "scalar" => Some(Backend::Scalar),
            "sliced" => Some(Backend::Sliced),
            "threaded" => Some(Backend::Threaded),
            _ => None,
        }
    }

    /// Whether the functional executors may take the span-validated
    /// slice fast paths (everything but the reference interpreter).
    pub(crate) fn sliced_exec(self) -> bool {
        !matches!(self, Backend::Scalar)
    }
}

impl core::fmt::Display for Backend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cycle charges for each simulated mechanism.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-instruction overhead: decode + Scalar Unit index/address
    /// arithmetic + inter-instruction barrier.
    pub issue_overhead: u64,
    /// Cycles per vector repeat iteration (one 256-byte block, mask
    /// lanes enabled or not).
    pub vector_per_repeat: u64,
    /// Cycles per fractal an `Im2Col` issue produces (SCU transform
    /// overlapped with the L1 -> target-buffer transfer).
    pub im2col_per_fractal: u64,
    /// Cycles per fractal a `Col2Im` issue merges (load scattered target
    /// lines, add, store back — a read-modify-write).
    pub col2im_per_fractal: u64,
    /// MTE bandwidth: bytes moved per cycle on the GM <-> scratchpad and
    /// scratchpad <-> scratchpad paths.
    pub move_bytes_per_cycle: u64,
    /// Cycles per fractal-pair multiplication in the Cube Unit ("can
    /// multiply two data-fractals per clock cycle" -> 1).
    pub cube_per_fractal_pair: u64,
    /// Per-tile dispatch overhead the chip charges when handing a program
    /// to a core (block scheduling, parameter registers).
    pub core_dispatch: u64,
    /// How instructions issue to the functional units (dual-pipe by
    /// default; [`IssueModel::SingleIssue`] reproduces the legacy serial
    /// timing exactly).
    pub issue_model: IssueModel,
    /// Buffer-slot renaming (dual-pipe only): writers that would
    /// WAR/WAW-stall against in-flight accesses of an older version of
    /// their span issue immediately into a rotated physical slot when
    /// the scratchpad has headroom for both versions. RAW edges and
    /// functional execution are untouched, so results stay bit-identical
    /// and the makespan can only shrink. Ignored under
    /// [`IssueModel::SingleIssue`].
    pub rename: bool,
    /// Host execution backend. Affects wall-clock speed of the simulator
    /// process only — simulated results, cycles, counters, traces, and
    /// peaks are backend-invariant by construction (the fast paths
    /// delegate to the reference interpreter whenever semantics could
    /// diverge).
    pub backend: Backend,
}

impl CostModel {
    /// Defaults calibrated so the reproduced figures land in the paper's
    /// regime (Fig. 7: ~3x forward, ~5x forward+argmax, ~6x backward at
    /// the largest InceptionV3 shape; Fig. 8: direct pooling wins at
    /// stride (1,1)). See EXPERIMENTS.md for the calibration record.
    pub const fn ascend910_like() -> CostModel {
        CostModel {
            issue_overhead: 16,
            vector_per_repeat: 1,
            // The SCU transformations gather/scatter strided C0 groups,
            // ~25.6 B/cyc — slightly below the MTE's sequential 32 B/cyc:
            // one 512-byte fractal every 20 cycles. Col2Im's scattered
            // read-modify-write fits the same stream window.
            im2col_per_fractal: 20,
            col2im_per_fractal: 20,
            move_bytes_per_cycle: 32,
            cube_per_fractal_pair: 1,
            core_dispatch: 64,
            issue_model: IssueModel::DualPipe,
            rename: true,
            backend: Backend::Threaded,
        }
    }

    /// The same cost model under a different host execution backend.
    /// Simulated behaviour is unchanged; only host wall-clock speed
    /// differs.
    pub const fn with_backend(mut self, backend: Backend) -> CostModel {
        self.backend = backend;
        self
    }

    /// The legacy serial machine: identical charges, but every
    /// instruction waits for the previous one to retire. Reproduces the
    /// PR 1 cycle counts (and the pre-dual-pipe committed baselines)
    /// exactly. (The `rename` flag is carried but has no effect: the
    /// serial machine never reorders anything.)
    pub const fn single_issue() -> CostModel {
        CostModel {
            issue_model: IssueModel::SingleIssue,
            ..CostModel::ascend910_like()
        }
    }

    /// The dual-pipe machine with buffer-slot renaming disabled: WAR and
    /// WAW hazards serialise exactly like RAW, as in the pre-renaming
    /// scoreboard. The control column for the rename ablation — same
    /// charges, same programs, strictly fewer scheduling freedoms.
    pub const fn dual_pipe_no_rename() -> CostModel {
        CostModel {
            rename: false,
            ..CostModel::ascend910_like()
        }
    }

    /// A model with zero issue overhead — ablation: how much of the
    /// speedup comes from repeat amortisation alone?
    pub const fn zero_issue_overhead() -> CostModel {
        CostModel {
            issue_overhead: 0,
            ..CostModel::ascend910_like()
        }
    }

    /// Cycles for a whole data move of `bytes` bytes (excluding issue
    /// overhead).
    pub fn move_cycles(&self, bytes: usize) -> u64 {
        (bytes as u64).div_ceil(self.move_bytes_per_cycle)
    }

    /// The cycle charge of one instruction under this model. This is the
    /// single source of truth the executors charge through, and — because
    /// the charge is a pure function of `(instruction, model)` — what
    /// static program costing (e.g. the auto-tuner's certified cycle
    /// floors in `dv-core`) can evaluate without executing anything.
    pub fn instr_cycles(&self, instr: &dv_isa::Instr) -> u64 {
        use dv_isa::Instr;
        match instr {
            Instr::Vector(v) => self.issue_overhead + v.repeat as u64 * self.vector_per_repeat,
            Instr::Im2Col(i) => self.issue_overhead + i.repeat as u64 * self.im2col_per_fractal,
            Instr::Col2Im(c) => self.issue_overhead + c.repeat as u64 * self.col2im_per_fractal,
            Instr::Move(m) => self.issue_overhead + self.move_cycles(m.bytes),
            Instr::Cube(c) => {
                self.issue_overhead + c.fractal_ops() as u64 * self.cube_per_fractal_pair
            }
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ascend910_like()
    }
}

/// Scratchpad capacities of one Ascend 910 AI Core (published DaVinci
/// parameters; the Unified Buffer size sets the tiling threshold in
/// Fig. 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capacities {
    /// L1 buffer bytes.
    pub l1: usize,
    /// L0A bytes.
    pub l0a: usize,
    /// L0B bytes.
    pub l0b: usize,
    /// L0C bytes.
    pub l0c: usize,
    /// Unified Buffer bytes.
    pub ub: usize,
}

impl Capacities {
    /// Ascend 910: L1 = 1 MiB, L0A = L0B = 64 KiB, L0C = 256 KiB,
    /// UB = 256 KiB.
    pub const ASCEND910: Capacities = Capacities {
        l1: 1024 * 1024,
        l0a: 64 * 1024,
        l0b: 64 * 1024,
        l0c: 256 * 1024,
        ub: 256 * 1024,
    };
}

impl Default for Capacities {
    fn default() -> Self {
        Capacities::ASCEND910
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_cycles_rounds_up() {
        let c = CostModel::ascend910_like();
        assert_eq!(c.move_cycles(0), 0);
        assert_eq!(c.move_cycles(1), 1);
        assert_eq!(c.move_cycles(32), 1);
        assert_eq!(c.move_cycles(33), 2);
        assert_eq!(c.move_cycles(1024), 32);
    }

    #[test]
    fn ablation_model_differs_only_in_issue() {
        let a = CostModel::ascend910_like();
        let z = CostModel::zero_issue_overhead();
        assert_eq!(z.issue_overhead, 0);
        assert_eq!(z.vector_per_repeat, a.vector_per_repeat);
        assert_eq!(z.move_bytes_per_cycle, a.move_bytes_per_cycle);
    }

    #[test]
    fn single_issue_model_differs_only_in_issue_model() {
        let dual = CostModel::ascend910_like();
        let single = CostModel::single_issue();
        assert_eq!(dual.issue_model, IssueModel::DualPipe);
        assert_eq!(single.issue_model, IssueModel::SingleIssue);
        assert_eq!(
            CostModel {
                issue_model: IssueModel::DualPipe,
                ..single
            },
            dual,
            "charges must be identical between the two issue models"
        );
    }

    #[test]
    fn no_rename_model_differs_only_in_rename() {
        let dual = CostModel::ascend910_like();
        let plain = CostModel::dual_pipe_no_rename();
        assert!(dual.rename);
        assert!(!plain.rename);
        assert_eq!(plain.issue_model, IssueModel::DualPipe);
        assert_eq!(
            CostModel {
                rename: true,
                ..plain
            },
            dual,
            "charges must be identical between the rename columns"
        );
    }

    #[test]
    fn backend_changes_no_charge_and_round_trips() {
        let dual = CostModel::ascend910_like();
        assert_eq!(dual.backend, Backend::Threaded);
        assert_eq!(Backend::default(), Backend::Threaded);
        for b in Backend::ALL {
            let m = dual.with_backend(b);
            assert_eq!(
                CostModel {
                    backend: dual.backend,
                    ..m
                },
                dual,
                "a backend swap must never change a cycle charge"
            );
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(Backend::parse("simd"), None);
    }

    #[test]
    fn capacities_match_published_values() {
        let c = Capacities::ASCEND910;
        assert_eq!(c.l1, 1 << 20);
        assert_eq!(c.ub, 256 << 10);
        assert_eq!(c.l0a, 64 << 10);
    }
}
