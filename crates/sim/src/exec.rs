//! Instruction execution: functional semantics + cycle charging.

use crate::buffers::{BufferSet, SimError};
use crate::cost::CostModel;
use crate::counters::{HwCounters, Unit};
use dv_fp16::F16;
use dv_isa::{
    Addr, BufferId, Col2Im, CubeMatmul, DataMove, Im2Col, Instr, VectorInstr, VectorOp,
    VECTOR_BYTES, VECTOR_LANES,
};
use dv_tensor::{C0, FRACTAL_BYTES, FRACTAL_ROWS};

/// A contiguous byte range in one buffer — the unit of hazard tracking
/// for the dual-pipe scoreboard. Spans are conservative bounding boxes:
/// a strided vector operand reports the whole `[base, last + 256)`
/// window it sweeps, never less than what the instruction touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct MemSpan {
    pub buffer: BufferId,
    /// First byte touched.
    pub start: usize,
    /// One past the last byte touched.
    pub end: usize,
}

impl MemSpan {
    fn new(addr: Addr, bytes: usize) -> MemSpan {
        MemSpan {
            buffer: addr.buffer,
            start: addr.offset,
            end: addr.offset + bytes,
        }
    }

    /// Do two spans overlap (same buffer, intersecting byte ranges)?
    pub fn overlaps(&self, other: &MemSpan) -> bool {
        self.buffer == other.buffer && self.start < other.end && other.start < self.end
    }
}

/// A strided operand's bounding box: `repeat` blocks of `block` bytes,
/// each `stride` bytes after the previous.
fn strided_span(addr: Addr, block: usize, stride: usize, repeat: usize) -> MemSpan {
    MemSpan::new(addr, repeat.saturating_sub(1) * stride + block)
}

/// Everything the simulator learns from executing one instruction: the
/// counter charges *and* the metadata the trace recorder stores. Every
/// executor returns one of these and the charges are applied at a single
/// site ([`ExecInfo::apply`] / the dual-pipe scheduler), so
/// hardware-counter totals stay consistent with the trace by
/// construction.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ExecInfo {
    pub mnemonic: &'static str,
    pub unit: Unit,
    pub cycles: u64,
    /// Hardware repeat count (1 for non-repeating instructions).
    pub repeat: u32,
    /// Enabled vector lanes over all repeats (0 for non-vector).
    pub useful_lanes: u64,
    /// Lane slots over all repeats (0 for non-vector).
    pub total_lanes: u64,
    pub src: Option<BufferId>,
    pub dst: Option<BufferId>,
    pub gm_bytes: u64,
    pub scratch_bytes: u64,
    /// Byte ranges the instruction read (RAW hazard sources). Up to
    /// three: two vector sources, or a Cube a/b/c-accumulate triple, or a
    /// Col2Im src + destination-plane read (it is a read-modify-write).
    pub reads: [Option<MemSpan>; 3],
    /// Byte range the instruction wrote (RAW producer, WAW/WAR target).
    pub write: Option<MemSpan>,
}

impl ExecInfo {
    /// Total data traffic (GM + scratchpad) this instruction caused.
    pub fn bytes(&self) -> u64 {
        self.gm_bytes + self.scratch_bytes
    }

    /// Charge this instruction into the hardware counters, advancing the
    /// wall clock by its full cycle charge (single-issue timing).
    pub fn apply(&self, counters: &mut HwCounters) {
        counters.record(self.mnemonic, self.unit, self.cycles);
        self.apply_traffic(counters);
    }

    /// Charge this instruction's busy time and traffic without advancing
    /// the wall clock — the dual-pipe scheduler sets the makespan itself.
    pub fn apply_busy(&self, counters: &mut HwCounters) {
        counters.record_busy(self.mnemonic, self.unit, self.cycles);
        self.apply_traffic(counters);
    }

    fn apply_traffic(&self, counters: &mut HwCounters) {
        if self.total_lanes > 0 {
            counters.record_lanes(self.useful_lanes, self.total_lanes);
        }
        counters.gm_bytes += self.gm_bytes;
        counters.scratch_bytes += self.scratch_bytes;
    }
}

/// Execute one instruction against the buffer set, charging `cost` cycles
/// into `counters`.
pub fn execute(
    instr: &Instr,
    bufs: &mut BufferSet,
    cost: &CostModel,
    counters: &mut HwCounters,
) -> Result<(), SimError> {
    let info = execute_info(instr, bufs, cost)?;
    info.apply(counters);
    Ok(())
}

/// Execute one instruction and report what happened without touching any
/// counters — the single entry point both [`execute`] and the tracing
/// core loop build on.
pub(crate) fn execute_info(
    instr: &Instr,
    bufs: &mut BufferSet,
    cost: &CostModel,
) -> Result<ExecInfo, SimError> {
    instr.validate()?;
    // All cycle charging funnels through `CostModel::instr_cycles`, so
    // static costing (the auto-tuner's certified floors) and execution can
    // never disagree on an instruction's charge.
    let cycles = cost.instr_cycles(instr);
    let mut info = match instr {
        Instr::Vector(v) => exec_vector(v, bufs, instr.mnemonic()),
        Instr::Im2Col(i) => exec_im2col(i, bufs),
        Instr::Col2Im(c) => exec_col2im(c, bufs),
        Instr::Move(m) => exec_move(m, bufs),
        Instr::Cube(c) => exec_cube(c, bufs),
    }?;
    info.cycles = cycles;
    Ok(info)
}

fn exec_vector(
    v: &VectorInstr,
    bufs: &mut BufferSet,
    mnemonic: &'static str,
) -> Result<ExecInfo, SimError> {
    for rep in 0..v.repeat as usize {
        let dst_base = v.dst.offset + rep * v.dst_stride;
        let src0_base = v.src0.offset + rep * v.src0_stride;
        let src1_base = v.src1.offset + rep * v.src1_stride;
        for lane in 0..VECTOR_LANES {
            if !v.mask.lane(lane) {
                continue;
            }
            let off = lane * 2;
            let a = if v.op.has_src0() {
                bufs.read_f16(v.src0.buffer, src0_base + off)?
            } else {
                F16::ZERO
            };
            let b = if v.op.has_src1() {
                bufs.read_f16(v.src1.buffer, src1_base + off)?
            } else {
                F16::ZERO
            };
            let out = match v.op {
                VectorOp::Max => a.max(b),
                VectorOp::Min => a.min(b),
                VectorOp::Add => a + b,
                VectorOp::Sub => a - b,
                VectorOp::Mul => a * b,
                VectorOp::MulScalar(s) => a * s,
                VectorOp::Dup(s) => s,
                VectorOp::CmpEq => {
                    if a == b {
                        F16::ONE
                    } else {
                        F16::ZERO
                    }
                }
                VectorOp::Copy => a,
                VectorOp::Relu => a.max(F16::ZERO),
            };
            bufs.write_f16(v.dst.buffer, dst_base + off, out)?;
        }
    }
    let rep = v.repeat as usize;
    Ok(ExecInfo {
        mnemonic,
        unit: Unit::Vector,
        cycles: 0, // set by execute_info from CostModel::instr_cycles
        repeat: v.repeat as u32,
        useful_lanes: v.useful_lanes(),
        total_lanes: VECTOR_LANES as u64 * v.repeat as u64,
        src: v.op.has_src0().then_some(v.src0.buffer),
        dst: Some(v.dst.buffer),
        gm_bytes: 0,
        scratch_bytes: 0,
        reads: [
            v.op.has_src0()
                .then(|| strided_span(v.src0, VECTOR_BYTES, v.src0_stride, rep)),
            v.op.has_src1()
                .then(|| strided_span(v.src1, VECTOR_BYTES, v.src1_stride, rep)),
            None,
        ],
        write: Some(strided_span(v.dst, VECTOR_BYTES, v.dst_stride, rep)),
    })
}

fn exec_im2col(i: &Im2Col, bufs: &mut BufferSet) -> Result<ExecInfo, SimError> {
    let geom = &i.geom;
    let iw = geom.iw;
    // Conservative read span: the whole range of source c1 planes the
    // repeats gather from (mode 0 walks c1 forward; mode 1 stays put).
    let (mut c1_min, mut c1_max) = (usize::MAX, 0usize);
    for (frac_idx, (c1, xk, yk, first_patch)) in i.repeat_positions().into_iter().enumerate() {
        c1_min = c1_min.min(c1);
        c1_max = c1_max.max(c1);
        let plane_base = i.src.offset + c1 * geom.src_plane_bytes();
        let frac_base = i.dst.offset + frac_idx * FRACTAL_BYTES;
        for row in 0..FRACTAL_ROWS {
            let patch = first_patch + row;
            let coord = geom.element_coord(patch, xk, yk);
            for c0 in 0..C0 {
                let v = match coord {
                    Some((h, w)) => {
                        let off = plane_base + ((h * iw + w) * C0 + c0) * 2;
                        bufs.read_f16(i.src.buffer, off)?
                    }
                    // Padding border or past-the-grid patch slots load
                    // zeros.
                    None => F16::ZERO,
                };
                bufs.write_f16(i.dst.buffer, frac_base + (row * C0 + c0) * 2, v)?;
            }
        }
    }
    let read = MemSpan {
        buffer: i.src.buffer,
        start: i.src.offset + c1_min * geom.src_plane_bytes(),
        end: i.src.offset + (c1_max + 1) * geom.src_plane_bytes(),
    };
    Ok(ExecInfo {
        mnemonic: "im2col",
        unit: Unit::Scu,
        cycles: 0, // set by execute_info from CostModel::instr_cycles
        repeat: i.repeat as u32,
        useful_lanes: 0,
        total_lanes: 0,
        src: Some(i.src.buffer),
        dst: Some(i.dst.buffer),
        gm_bytes: 0,
        scratch_bytes: i.repeat as u64 * FRACTAL_BYTES as u64,
        reads: [Some(read), None, None],
        write: Some(MemSpan::new(i.dst, i.repeat as usize * FRACTAL_BYTES)),
    })
}

fn exec_col2im(c: &Col2Im, bufs: &mut BufferSet) -> Result<ExecInfo, SimError> {
    let geom = &c.geom;
    let iw = geom.iw;
    let (xk, yk) = c.k_off;
    let plane_base = c.dst.offset + c.c1 * geom.src_plane_bytes();
    for rep in 0..c.repeat as usize {
        let frac_base = c.src.offset + rep * FRACTAL_BYTES;
        for row in 0..FRACTAL_ROWS {
            let patch = c.first_patch + rep * FRACTAL_ROWS + row;
            // Patch slots past the grid and padding-border positions are
            // skipped — their contributions do not land anywhere.
            let Some((h, w)) = geom.element_coord(patch, xk, yk) else {
                continue;
            };
            for c0 in 0..C0 {
                let src_off = frac_base + (row * C0 + c0) * 2;
                let dst_off = plane_base + ((h * iw + w) * C0 + c0) * 2;
                let add = bufs.read_f16(c.src.buffer, src_off)?;
                let cur = bufs.read_f16(c.dst.buffer, dst_off)?;
                bufs.write_f16(c.dst.buffer, dst_off, cur + add)?;
            }
        }
    }
    // Architecturally Col2Im "acts as a vector instruction" (Section
    // III-D), so its cycles are attributed to the Vector Unit.
    let src_span = MemSpan::new(c.src, c.repeat as usize * FRACTAL_BYTES);
    // The scatter-add reads *and* writes the destination c1 plane.
    let dst_plane = MemSpan {
        buffer: c.dst.buffer,
        start: plane_base,
        end: plane_base + geom.src_plane_bytes(),
    };
    Ok(ExecInfo {
        mnemonic: "col2im",
        unit: Unit::Vector,
        cycles: 0, // set by execute_info from CostModel::instr_cycles
        repeat: c.repeat as u32,
        useful_lanes: 0,
        total_lanes: 0,
        src: Some(c.src.buffer),
        dst: Some(c.dst.buffer),
        gm_bytes: 0,
        scratch_bytes: 2 * c.repeat as u64 * FRACTAL_BYTES as u64, // RMW
        reads: [Some(src_span), Some(dst_plane), None],
        write: Some(dst_plane),
    })
}

fn exec_move(m: &DataMove, bufs: &mut BufferSet) -> Result<ExecInfo, SimError> {
    if m.src.buffer == BufferId::L0C {
        // The L0C -> UB drain converts f32 accumulators to f16; `bytes`
        // counts source (f32) bytes.
        if !m.bytes.is_multiple_of(4) {
            return Err(SimError::Misaligned {
                buffer: BufferId::L0C,
                offset: m.bytes,
                align: 4,
            });
        }
        let n = m.bytes / 4;
        for e in 0..n {
            let v = bufs.read_f32_l0c(m.src.offset + e * 4)?;
            bufs.write_f16(m.dst.buffer, m.dst.offset + e * 2, F16::from_f32(v))?;
        }
    } else {
        bufs.copy(
            m.src.buffer,
            m.src.offset,
            m.dst.buffer,
            m.dst.offset,
            m.bytes,
        )?;
    }
    let touches_gm = m.src.buffer == BufferId::Gm || m.dst.buffer == BufferId::Gm;
    // The L0C drain halves the byte count on the f32 -> f16 conversion.
    let dst_bytes = if m.src.buffer == BufferId::L0C {
        m.bytes / 2
    } else {
        m.bytes
    };
    Ok(ExecInfo {
        mnemonic: "mte_move",
        unit: Unit::Mte,
        cycles: 0, // set by execute_info from CostModel::instr_cycles
        repeat: 1,
        useful_lanes: 0,
        total_lanes: 0,
        src: Some(m.src.buffer),
        dst: Some(m.dst.buffer),
        gm_bytes: if touches_gm { m.bytes as u64 } else { 0 },
        scratch_bytes: if touches_gm { 0 } else { m.bytes as u64 },
        reads: [Some(MemSpan::new(m.src, m.bytes)), None, None],
        write: Some(MemSpan::new(m.dst, dst_bytes)),
    })
}

fn exec_cube(c: &CubeMatmul, bufs: &mut BufferSet) -> Result<ExecInfo, SimError> {
    const E: usize = dv_isa::cube::FRACTAL_EDGE; // 16
    let (mf, kf, nf) = (c.m_fractals, c.k_fractals, c.n_fractals);
    // Tiles are stored as row-major grids of fractals, each fractal
    // row-major 16x16 f16 (f32 in L0C).
    let a_frac = |bufs: &BufferSet, fi: usize, fj: usize, r: usize, col: usize| {
        bufs.read_f16(
            c.a.buffer,
            c.a.offset + ((fi * kf + fj) * E * E + r * E + col) * 2,
        )
    };
    let b_frac = |bufs: &BufferSet, fi: usize, fj: usize, r: usize, col: usize| {
        bufs.read_f16(
            c.b.buffer,
            c.b.offset + ((fi * nf + fj) * E * E + r * E + col) * 2,
        )
    };
    for mi in 0..mf * E {
        for ni in 0..nf * E {
            let mut acc = if c.accumulate {
                bufs.read_f32_l0c(
                    c.c.offset + (((mi / E) * nf + ni / E) * E * E + (mi % E) * E + ni % E) * 4,
                )?
            } else {
                0.0f32
            };
            for ki in 0..kf * E {
                let a = a_frac(bufs, mi / E, ki / E, mi % E, ki % E)?;
                let b = b_frac(bufs, ki / E, ni / E, ki % E, ni % E)?;
                acc += a.to_f32() * b.to_f32();
            }
            bufs.write_f32_l0c(
                c.c.offset + (((mi / E) * nf + ni / E) * E * E + (mi % E) * E + ni % E) * 4,
                acc,
            )?;
        }
    }
    let a_span = MemSpan::new(c.a, mf * kf * E * E * 2);
    let b_span = MemSpan::new(c.b, kf * nf * E * E * 2);
    let c_span = MemSpan::new(c.c, mf * nf * E * E * 4); // f32 accumulators
    Ok(ExecInfo {
        mnemonic: "cube_mmad",
        unit: Unit::Cube,
        cycles: 0, // set by execute_info from CostModel::instr_cycles
        repeat: 1,
        useful_lanes: 0,
        total_lanes: 0,
        src: Some(c.a.buffer),
        dst: Some(c.c.buffer),
        gm_bytes: 0,
        scratch_bytes: 0,
        reads: [Some(a_span), Some(b_span), c.accumulate.then_some(c_span)],
        write: Some(c_span),
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::cost::Capacities;
    use dv_isa::{Addr, Mask};
    use dv_tensor::PoolParams;

    fn setup() -> (BufferSet, CostModel, HwCounters) {
        (
            BufferSet::new(Capacities::ASCEND910, 1 << 20),
            CostModel::ascend910_like(),
            HwCounters::default(),
        )
    }

    fn f(x: f32) -> F16 {
        F16::from_f32(x)
    }

    #[test]
    fn vmax_masked_lanes_only() {
        let (mut bufs, cost, mut ctr) = setup();
        let a: Vec<F16> = (0..128).map(|i| f(i as f32)).collect();
        let b: Vec<F16> = (0..128).map(|i| f((127 - i) as f32)).collect();
        bufs.load_f16_slice(BufferId::Ub, 0, &a).unwrap();
        bufs.load_f16_slice(BufferId::Ub, 256, &b).unwrap();
        let i = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Max,
            Addr::ub(512),
            Addr::ub(0),
            Addr::ub(256),
            Mask::first_n(16),
            1,
        ));
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        let out = bufs.read_f16_slice(BufferId::Ub, 512, 128).unwrap();
        for lane in 0..16 {
            assert_eq!(out[lane].to_f32(), (127 - lane).max(lane) as f32);
        }
        for lane in 16..128 {
            assert_eq!(out[lane], F16::ZERO, "masked lane {lane} must not write");
        }
        assert_eq!(ctr.cycles, cost.issue_overhead + 1);
        assert_eq!(ctr.vector_useful_lanes, 16);
        assert_eq!(ctr.vector_total_lanes, 128);
    }

    #[test]
    fn vector_repeat_with_strides() {
        let (mut bufs, cost, mut ctr) = setup();
        // accumulate max over 3 blocks into one block: dst_stride = 0.
        let init: Vec<F16> = vec![F16::NEG_INFINITY; 128];
        bufs.load_f16_slice(BufferId::Ub, 0, &init).unwrap();
        for rep in 0..3usize {
            let vals: Vec<F16> = (0..128).map(|i| f((i * (rep + 1)) as f32)).collect();
            bufs.load_f16_slice(BufferId::Ub, 1024 + rep * 256, &vals)
                .unwrap();
        }
        let i = Instr::Vector(VectorInstr {
            op: VectorOp::Max,
            dst: Addr::ub(0),
            src0: Addr::ub(0),
            src1: Addr::ub(1024),
            mask: Mask::FULL,
            repeat: 3,
            dst_stride: 0,
            src0_stride: 0,
            src1_stride: 256,
        });
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        let out = bufs.read_f16_slice(BufferId::Ub, 0, 128).unwrap();
        for lane in 0..128 {
            assert_eq!(out[lane].to_f32(), (lane * 3) as f32);
        }
        assert_eq!(ctr.cycles, cost.issue_overhead + 3);
    }

    #[test]
    fn vdup_initialises() {
        let (mut bufs, cost, mut ctr) = setup();
        let i = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Dup(F16::NEG_INFINITY),
            Addr::ub(0),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            2,
        ));
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        let out = bufs.read_f16_slice(BufferId::Ub, 0, 256).unwrap();
        assert!(out.iter().all(|&x| x == F16::NEG_INFINITY));
    }

    #[test]
    fn vcmp_eq_produces_indicator() {
        let (mut bufs, cost, mut ctr) = setup();
        bufs.load_f16_slice(BufferId::Ub, 0, &[f(1.0), f(2.0), f(3.0)])
            .unwrap();
        bufs.load_f16_slice(BufferId::Ub, 256, &[f(1.0), f(9.0), f(3.0)])
            .unwrap();
        let i = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::CmpEq,
            Addr::ub(512),
            Addr::ub(0),
            Addr::ub(256),
            Mask::first_n(3),
            1,
        ));
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        let out = bufs.read_f16_slice(BufferId::Ub, 512, 3).unwrap();
        assert_eq!(out, vec![F16::ONE, F16::ZERO, F16::ONE]);
    }

    #[test]
    fn move_gm_to_l1_and_counters() {
        let (mut bufs, cost, mut ctr) = setup();
        let vals: Vec<F16> = (0..64).map(|i| f(i as f32)).collect();
        bufs.load_f16_slice(BufferId::Gm, 0, &vals).unwrap();
        let i = Instr::Move(DataMove::new(Addr::gm(0), Addr::l1(0), 128));
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        assert_eq!(bufs.read_f16_slice(BufferId::L1, 0, 64).unwrap(), vals);
        assert_eq!(ctr.gm_bytes, 128);
        assert_eq!(ctr.cycles, cost.issue_overhead + cost.move_cycles(128));
    }

    /// Fig. 5 end-to-end: four mode-0 repeats of one Im2Col load the 8x8
    /// image into four fractals in the (kh, kw)-indexed order.
    #[test]
    fn im2col_figure_5() {
        let (mut bufs, cost, mut ctr) = setup();
        let params = PoolParams::new((2, 2), (2, 2));
        let geom = dv_isa::Im2ColGeometry::new(8, 8, 1, params).unwrap();
        // Input plane HWC0 in L1, value = h*8 + w (same for all c0).
        let mut plane = Vec::with_capacity(8 * 8 * C0);
        for h in 0..8 {
            for w in 0..8 {
                for _ in 0..C0 {
                    plane.push(f((h * 8 + w) as f32));
                }
            }
        }
        bufs.load_f16_slice(BufferId::L1, 0, &plane).unwrap();
        let i = Instr::Im2Col(Im2Col {
            geom,
            src: Addr::l1(0),
            dst: Addr::ub(0),
            first_patch: 0,
            k_off: (0, 0),
            c1: 0,
            repeat: 4,
            mode: dv_isa::RepeatMode::Mode0,
        });
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        // Fractal 0 = kernel offset (0,0): patch p at (2*(p/4), 2*(p%4)).
        for p in 0..16 {
            let (ph, pw) = (2 * (p / 4), 2 * (p % 4));
            let v = bufs.read_f16(BufferId::Ub, (p * C0) * 2).unwrap().to_f32();
            assert_eq!(v, (ph * 8 + pw) as f32, "fractal 0 patch {p}");
        }
        // Fractal 1 = kernel offset (0,1): same patches shifted right.
        for p in 0..16 {
            let (ph, pw) = (2 * (p / 4), 2 * (p % 4) + 1);
            let v = bufs
                .read_f16(BufferId::Ub, FRACTAL_BYTES + p * C0 * 2)
                .unwrap()
                .to_f32();
            assert_eq!(v, (ph * 8 + pw) as f32, "fractal 1 patch {p}");
        }
        // Fractal 3 = kernel offset (1,1).
        for p in 0..16 {
            let (ph, pw) = (2 * (p / 4) + 1, 2 * (p % 4) + 1);
            let v = bufs
                .read_f16(BufferId::Ub, 3 * FRACTAL_BYTES + p * C0 * 2)
                .unwrap()
                .to_f32();
            assert_eq!(v, (ph * 8 + pw) as f32, "fractal 3 patch {p}");
        }
        assert_eq!(ctr.issues_of("im2col"), 1);
        assert_eq!(
            ctr.cycles,
            cost.issue_overhead + 4 * cost.im2col_per_fractal
        );
    }

    /// Fig. 6: one Col2Im merges one fractal back into a zero-initialised
    /// output, summing at the scattered positions.
    #[test]
    fn col2im_figure_6() {
        let (mut bufs, cost, mut ctr) = setup();
        let params = PoolParams::new((2, 2), (2, 2));
        let geom = dv_isa::Im2ColGeometry::new(8, 8, 1, params).unwrap();
        // Input fractal at UB+0: patch p row holds value p+1.
        let mut frac = Vec::with_capacity(16 * C0);
        for p in 0..16 {
            for _ in 0..C0 {
                frac.push(f((p + 1) as f32));
            }
        }
        bufs.load_f16_slice(BufferId::Ub, 0, &frac).unwrap();
        // Output tile at UB+8192 (already zero).
        let i = Instr::Col2Im(Col2Im {
            geom,
            src: Addr::ub(0),
            dst: Addr::ub(8192),
            first_patch: 0,
            k_off: (0, 0),
            c1: 0,
            repeat: 1,
        });
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        // Patch p maps to input position (2*(p/4), 2*(p%4)); offset (0,0).
        for p in 0..16 {
            let (h, w) = (2 * (p / 4), 2 * (p % 4));
            let off = 8192 + ((h * 8 + w) * C0) * 2;
            assert_eq!(
                bufs.read_f16(BufferId::Ub, off).unwrap().to_f32(),
                (p + 1) as f32
            );
        }
        // Non-patch positions stay zero.
        assert_eq!(
            bufs.read_f16(BufferId::Ub, 8192 + C0 * 2).unwrap(),
            F16::ZERO
        );
        // Running the same Col2Im again doubles the values (sum semantics).
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        assert_eq!(bufs.read_f16(BufferId::Ub, 8192).unwrap().to_f32(), 2.0);
        assert_eq!(ctr.issues_of("col2im"), 2);
    }

    #[test]
    fn cube_matmul_single_fractal() {
        let (mut bufs, cost, mut ctr) = setup();
        // A = I (16x16 identity), B = ramp; C must equal B.
        let mut a = vec![F16::ZERO; 256];
        for i in 0..16 {
            a[i * 16 + i] = F16::ONE;
        }
        let b: Vec<F16> = (0..256).map(|i| f((i % 23) as f32)).collect();
        bufs.load_f16_slice(BufferId::L0A, 0, &a).unwrap();
        bufs.load_f16_slice(BufferId::L0B, 0, &b).unwrap();
        let i = Instr::Cube(CubeMatmul {
            a: Addr::new(BufferId::L0A, 0),
            b: Addr::new(BufferId::L0B, 0),
            c: Addr::new(BufferId::L0C, 0),
            m_fractals: 1,
            k_fractals: 1,
            n_fractals: 1,
            accumulate: false,
        });
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        for e in 0..256 {
            assert_eq!(bufs.read_f32_l0c(e * 4).unwrap(), b[e].to_f32());
        }
        assert_eq!(ctr.cycles, cost.issue_overhead + cost.cube_per_fractal_pair);
    }

    #[test]
    fn cube_accumulate_mode() {
        let (mut bufs, cost, mut ctr) = setup();
        let ones = vec![F16::ONE; 256];
        bufs.load_f16_slice(BufferId::L0A, 0, &ones).unwrap();
        bufs.load_f16_slice(BufferId::L0B, 0, &ones).unwrap();
        let mut mm = CubeMatmul {
            a: Addr::new(BufferId::L0A, 0),
            b: Addr::new(BufferId::L0B, 0),
            c: Addr::new(BufferId::L0C, 0),
            m_fractals: 1,
            k_fractals: 1,
            n_fractals: 1,
            accumulate: false,
        };
        execute(&Instr::Cube(mm), &mut bufs, &cost, &mut ctr).unwrap();
        assert_eq!(bufs.read_f32_l0c(0).unwrap(), 16.0);
        mm.accumulate = true;
        execute(&Instr::Cube(mm), &mut bufs, &cost, &mut ctr).unwrap();
        assert_eq!(bufs.read_f32_l0c(0).unwrap(), 32.0);
    }

    #[test]
    fn l0c_drain_converts_f32_to_f16() {
        let (mut bufs, cost, mut ctr) = setup();
        bufs.write_f32_l0c(0, 3.125).unwrap();
        bufs.write_f32_l0c(4, -2.0).unwrap();
        let i = Instr::Move(DataMove::new(Addr::new(BufferId::L0C, 0), Addr::ub(0), 8));
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        assert_eq!(bufs.read_f16(BufferId::Ub, 0).unwrap().to_f32(), 3.125);
        assert_eq!(bufs.read_f16(BufferId::Ub, 2).unwrap().to_f32(), -2.0);
    }

    #[test]
    fn oob_vector_access_errors() {
        let (mut bufs, cost, mut ctr) = setup();
        let cap = bufs.capacity(BufferId::Ub);
        let i = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(cap - 64), // 128 lanes x 2B = 256B needed
            Addr::ub(0),
            Addr::ub(256),
            Mask::FULL,
            1,
        ));
        assert!(matches!(
            execute(&i, &mut bufs, &cost, &mut ctr),
            Err(SimError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn invalid_instruction_rejected_at_execute() {
        let (mut bufs, cost, mut ctr) = setup();
        let i = Instr::Move(DataMove::new(Addr::gm(0), Addr::new(BufferId::L0A, 0), 4));
        assert!(matches!(
            execute(&i, &mut bufs, &cost, &mut ctr),
            Err(SimError::Isa(_))
        ));
    }
}
