//! Instruction execution: functional semantics + cycle charging.

use crate::buffers::{BufferSet, SimError};
use crate::cost::{Backend, CostModel};
use crate::counters::{HwCounters, Unit};
use dv_fp16::F16;
use dv_isa::{
    Addr, BufferId, Col2Im, CubeMatmul, DataMove, Im2Col, Instr, VectorInstr, VectorOp,
    VECTOR_BYTES, VECTOR_LANES,
};
use dv_tensor::{C0, FRACTAL_BYTES, FRACTAL_ROWS};

/// A contiguous byte range in one buffer — the unit of hazard tracking
/// for the dual-pipe scoreboard. Spans are conservative bounding boxes:
/// a strided vector operand reports the whole `[base, last + 256)`
/// window it sweeps, never less than what the instruction touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct MemSpan {
    pub buffer: BufferId,
    /// First byte touched.
    pub start: usize,
    /// One past the last byte touched.
    pub end: usize,
}

impl MemSpan {
    fn new(addr: Addr, bytes: usize) -> MemSpan {
        MemSpan {
            buffer: addr.buffer,
            start: addr.offset,
            end: addr.offset + bytes,
        }
    }

    /// Do two spans overlap (same buffer, intersecting byte ranges)?
    pub fn overlaps(&self, other: &MemSpan) -> bool {
        self.buffer == other.buffer && self.start < other.end && other.start < self.end
    }
}

/// A strided operand's bounding box: `repeat` blocks of `block` bytes,
/// each `stride` bytes after the previous.
fn strided_span(addr: Addr, block: usize, stride: usize, repeat: usize) -> MemSpan {
    MemSpan::new(addr, repeat.saturating_sub(1) * stride + block)
}

/// Read one f16 from a raw byte slice. Fast-path primitive: the caller
/// has already validated the operand's whole span.
#[inline]
fn get16(b: &[u8], off: usize) -> F16 {
    F16::from_bits(u16::from_le_bytes([b[off], b[off + 1]]))
}

/// Write one f16 into a raw byte slice (span pre-validated).
#[inline]
fn put16(b: &mut [u8], off: usize, v: F16) {
    let x = v.to_bits().to_le_bytes();
    b[off] = x[0];
    b[off + 1] = x[1];
}

/// Can `reps` blocks of `block_bytes` f16 bytes, `stride` apart starting
/// at `addr`, be accessed through the unchecked slice path? Declines —
/// conservatively, sending the instruction to the reference interpreter —
/// on L0C (f16 views of the f32 accumulator buffer must keep erroring),
/// misaligned offsets, odd strides, and any span not provably inside the
/// buffer. `reps` must be at least 1.
fn f16_rect_ok(
    bufs: &BufferSet,
    addr: Addr,
    stride: usize,
    reps: usize,
    block_bytes: usize,
) -> bool {
    if addr.buffer == BufferId::L0C || !addr.offset.is_multiple_of(2) {
        return false;
    }
    if reps > 1 && !stride.is_multiple_of(2) {
        return false;
    }
    let Some(span) = (reps - 1)
        .checked_mul(stride)
        .and_then(|s| s.checked_add(block_bytes))
    else {
        return false;
    };
    addr.offset
        .checked_add(span)
        .is_some_and(|end| end <= bufs.capacity(addr.buffer))
}

/// One lane of a vector instruction — shared by the reference
/// interpreter and the sliced fast path so the arithmetic can never
/// fork between backends.
#[inline]
fn vector_lane_op(op: VectorOp, a: F16, b: F16) -> F16 {
    match op {
        VectorOp::Max => a.max(b),
        VectorOp::Min => a.min(b),
        VectorOp::Add => a + b,
        VectorOp::Sub => a - b,
        VectorOp::Mul => a * b,
        VectorOp::MulScalar(s) => a * s,
        VectorOp::Dup(s) => s,
        VectorOp::CmpEq => {
            if a == b {
                F16::ONE
            } else {
                F16::ZERO
            }
        }
        VectorOp::Copy => a,
        VectorOp::Relu => a.max(F16::ZERO),
    }
}

/// Everything the simulator learns from executing one instruction: the
/// counter charges *and* the metadata the trace recorder stores. Every
/// executor returns one of these and the charges are applied at a single
/// site ([`ExecInfo::apply`] / the dual-pipe scheduler), so
/// hardware-counter totals stay consistent with the trace by
/// construction.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ExecInfo {
    pub mnemonic: &'static str,
    pub unit: Unit,
    pub cycles: u64,
    /// Hardware repeat count (1 for non-repeating instructions).
    pub repeat: u32,
    /// Enabled vector lanes over all repeats (0 for non-vector).
    pub useful_lanes: u64,
    /// Lane slots over all repeats (0 for non-vector).
    pub total_lanes: u64,
    pub src: Option<BufferId>,
    pub dst: Option<BufferId>,
    pub gm_bytes: u64,
    pub scratch_bytes: u64,
    /// Byte ranges the instruction read (RAW hazard sources). Up to
    /// three: two vector sources, or a Cube a/b/c-accumulate triple, or a
    /// Col2Im src + destination-plane read (it is a read-modify-write).
    pub reads: [Option<MemSpan>; 3],
    /// Byte range the instruction wrote (RAW producer, WAW/WAR target).
    pub write: Option<MemSpan>,
}

impl ExecInfo {
    /// Total data traffic (GM + scratchpad) this instruction caused.
    pub fn bytes(&self) -> u64 {
        self.gm_bytes + self.scratch_bytes
    }

    /// Charge this instruction into the hardware counters, advancing the
    /// wall clock by its full cycle charge (single-issue timing).
    pub fn apply(&self, counters: &mut HwCounters) {
        counters.record(self.mnemonic, self.unit, self.cycles);
        self.apply_traffic(counters);
    }

    /// Charge this instruction's busy time and traffic without advancing
    /// the wall clock — the dual-pipe scheduler sets the makespan itself.
    pub fn apply_busy(&self, counters: &mut HwCounters) {
        counters.record_busy(self.mnemonic, self.unit, self.cycles);
        self.apply_traffic(counters);
    }

    fn apply_traffic(&self, counters: &mut HwCounters) {
        if self.total_lanes > 0 {
            counters.record_lanes(self.useful_lanes, self.total_lanes);
        }
        counters.gm_bytes += self.gm_bytes;
        counters.scratch_bytes += self.scratch_bytes;
    }
}

/// Execute one instruction against the buffer set, charging `cost` cycles
/// into `counters`.
pub fn execute(
    instr: &Instr,
    bufs: &mut BufferSet,
    cost: &CostModel,
    counters: &mut HwCounters,
) -> Result<(), SimError> {
    let info = execute_info(instr, bufs, cost)?;
    info.apply(counters);
    Ok(())
}

/// Execute one instruction and report what happened without touching any
/// counters — the single entry point both [`execute`] and the tracing
/// core loop build on.
pub(crate) fn execute_info(
    instr: &Instr,
    bufs: &mut BufferSet,
    cost: &CostModel,
) -> Result<ExecInfo, SimError> {
    instr.validate()?;
    // All cycle charging funnels through `CostModel::instr_cycles`, so
    // static costing (the auto-tuner's certified floors) and execution can
    // never disagree on an instruction's charge.
    let cycles = cost.instr_cycles(instr);
    let backend = cost.backend;
    let mut info = match instr {
        Instr::Vector(v) => exec_vector(v, bufs, instr.mnemonic(), backend),
        Instr::Im2Col(i) => exec_im2col(i, bufs, backend),
        Instr::Col2Im(c) => exec_col2im(c, bufs, backend),
        Instr::Move(m) => exec_move(m, bufs, backend),
        Instr::Cube(c) => exec_cube(c, bufs, backend),
    }?;
    info.cycles = cycles;
    Ok(info)
}

fn exec_vector(
    v: &VectorInstr,
    bufs: &mut BufferSet,
    mnemonic: &'static str,
    backend: Backend,
) -> Result<ExecInfo, SimError> {
    if !(backend.sliced_exec() && vector_sliced(v, bufs)) {
        // Reference interpreter: per-element checked access. Also the
        // fallback whenever the sliced path's one-shot span validation
        // declines, so error values and partial-write effects stay
        // bit-identical across backends.
        for rep in 0..v.repeat as usize {
            let dst_base = v.dst.offset + rep * v.dst_stride;
            let src0_base = v.src0.offset + rep * v.src0_stride;
            let src1_base = v.src1.offset + rep * v.src1_stride;
            for lane in 0..VECTOR_LANES {
                if !v.mask.lane(lane) {
                    continue;
                }
                let off = lane * 2;
                let a = if v.op.has_src0() {
                    bufs.read_f16(v.src0.buffer, src0_base + off)?
                } else {
                    F16::ZERO
                };
                let b = if v.op.has_src1() {
                    bufs.read_f16(v.src1.buffer, src1_base + off)?
                } else {
                    F16::ZERO
                };
                bufs.write_f16(v.dst.buffer, dst_base + off, vector_lane_op(v.op, a, b))?;
            }
        }
    }
    let rep = v.repeat as usize;
    Ok(ExecInfo {
        mnemonic,
        unit: Unit::Vector,
        cycles: 0, // set by execute_info from CostModel::instr_cycles
        repeat: v.repeat as u32,
        useful_lanes: v.useful_lanes(),
        total_lanes: VECTOR_LANES as u64 * v.repeat as u64,
        src: v.op.has_src0().then_some(v.src0.buffer),
        dst: Some(v.dst.buffer),
        gm_bytes: 0,
        scratch_bytes: 0,
        reads: [
            v.op.has_src0()
                .then(|| strided_span(v.src0, VECTOR_BYTES, v.src0_stride, rep)),
            v.op.has_src1()
                .then(|| strided_span(v.src1, VECTOR_BYTES, v.src1_stride, rep)),
            None,
        ],
        write: Some(strided_span(v.dst, VECTOR_BYTES, v.dst_stride, rep)),
    })
}

/// The `Sliced`/`Threaded` vector fast path: validate every operand's
/// whole strided span once, then run the lane loop over raw slices with
/// no per-element checks. Returns `false` — touching no memory — when
/// the instruction cannot be proven safe up front; the caller then runs
/// the reference interpreter, which reproduces the exact error (and any
/// partial writes preceding it).
fn vector_sliced(v: &VectorInstr, bufs: &mut BufferSet) -> bool {
    let reps = v.repeat as usize;
    let Some(top) = (0..VECTOR_LANES).rev().find(|&l| v.mask.lane(l)) else {
        return true; // no enabled lanes: no memory is touched
    };
    if reps == 0 {
        return true;
    }
    let block = (top + 1) * 2;
    if !f16_rect_ok(bufs, v.dst, v.dst_stride, reps, block)
        || (v.op.has_src0() && !f16_rect_ok(bufs, v.src0, v.src0_stride, reps, block))
        || (v.op.has_src1() && !f16_rect_ok(bufs, v.src1, v.src1_stride, reps, block))
    {
        return false;
    }
    let dst_id = v.dst.buffer;
    // A source living in the destination buffer must observe this
    // instruction's earlier writes (e.g. the accumulate idiom with
    // dst_stride 0), so those lanes read through the taken vector.
    let s0_in_dst = v.op.has_src0() && v.src0.buffer == dst_id;
    let s1_in_dst = v.op.has_src1() && v.src1.buffer == dst_id;
    let mut dstv = std::mem::take(bufs.raw_mut(dst_id));
    {
        let s0: &[u8] = if v.op.has_src0() && !s0_in_dst {
            bufs.raw(v.src0.buffer)
        } else {
            &[]
        };
        let s1: &[u8] = if v.op.has_src1() && !s1_in_dst {
            bufs.raw(v.src1.buffer)
        } else {
            &[]
        };
        for rep in 0..reps {
            let dst_base = v.dst.offset + rep * v.dst_stride;
            let src0_base = v.src0.offset + rep * v.src0_stride;
            let src1_base = v.src1.offset + rep * v.src1_stride;
            for lane in 0..=top {
                if !v.mask.lane(lane) {
                    continue;
                }
                let off = lane * 2;
                let a = if v.op.has_src0() {
                    get16(if s0_in_dst { &dstv } else { s0 }, src0_base + off)
                } else {
                    F16::ZERO
                };
                let b = if v.op.has_src1() {
                    get16(if s1_in_dst { &dstv } else { s1 }, src1_base + off)
                } else {
                    F16::ZERO
                };
                put16(&mut dstv, dst_base + off, vector_lane_op(v.op, a, b));
            }
        }
    }
    *bufs.raw_mut(dst_id) = dstv;
    bufs.note_peak(dst_id, v.dst.offset + (reps - 1) * v.dst_stride + block);
    true
}

fn exec_im2col(i: &Im2Col, bufs: &mut BufferSet, backend: Backend) -> Result<ExecInfo, SimError> {
    let geom = &i.geom;
    let iw = geom.iw;
    let positions = i.repeat_positions();
    // Conservative read span: the whole range of source c1 planes the
    // repeats gather from (mode 0 walks c1 forward; mode 1 stays put).
    let (mut c1_min, mut c1_max) = (usize::MAX, 0usize);
    for &(c1, ..) in &positions {
        c1_min = c1_min.min(c1);
        c1_max = c1_max.max(c1);
    }
    if !(backend.sliced_exec() && im2col_sliced(i, bufs, &positions, c1_max)) {
        for (frac_idx, &(c1, xk, yk, first_patch)) in positions.iter().enumerate() {
            let plane_base = i.src.offset + c1 * geom.src_plane_bytes();
            let frac_base = i.dst.offset + frac_idx * FRACTAL_BYTES;
            for row in 0..FRACTAL_ROWS {
                let patch = first_patch + row;
                let coord = geom.element_coord(patch, xk, yk);
                for c0 in 0..C0 {
                    let v = match coord {
                        Some((h, w)) => {
                            let off = plane_base + ((h * iw + w) * C0 + c0) * 2;
                            bufs.read_f16(i.src.buffer, off)?
                        }
                        // Padding border or past-the-grid patch slots load
                        // zeros.
                        None => F16::ZERO,
                    };
                    bufs.write_f16(i.dst.buffer, frac_base + (row * C0 + c0) * 2, v)?;
                }
            }
        }
    }
    let read = MemSpan {
        buffer: i.src.buffer,
        start: i.src.offset + c1_min * geom.src_plane_bytes(),
        end: i.src.offset + (c1_max + 1) * geom.src_plane_bytes(),
    };
    Ok(ExecInfo {
        mnemonic: "im2col",
        unit: Unit::Scu,
        cycles: 0, // set by execute_info from CostModel::instr_cycles
        repeat: i.repeat as u32,
        useful_lanes: 0,
        total_lanes: 0,
        src: Some(i.src.buffer),
        dst: Some(i.dst.buffer),
        gm_bytes: 0,
        scratch_bytes: i.repeat as u64 * FRACTAL_BYTES as u64,
        reads: [Some(read), None, None],
        write: Some(MemSpan::new(i.dst, i.repeat as usize * FRACTAL_BYTES)),
    })
}

/// Sliced `Im2Col`: validate the destination fractal range and the whole
/// source c1-plane range once (reads resolved by `element_coord` always
/// land inside their plane), then gather through raw slices.
fn im2col_sliced(
    i: &Im2Col,
    bufs: &mut BufferSet,
    positions: &[(usize, usize, usize, usize)],
    c1_max: usize,
) -> bool {
    let geom = &i.geom;
    let iw = geom.iw;
    if positions.is_empty() {
        return true;
    }
    let plane = geom.src_plane_bytes();
    let src_ok = i.src.buffer != BufferId::L0C
        && i.src.offset.is_multiple_of(2)
        && (c1_max + 1)
            .checked_mul(plane)
            .and_then(|b| i.src.offset.checked_add(b))
            .is_some_and(|end| end <= bufs.capacity(i.src.buffer));
    if !src_ok || !f16_rect_ok(bufs, i.dst, 0, 1, positions.len() * FRACTAL_BYTES) {
        return false;
    }
    let dst_id = i.dst.buffer;
    let same = i.src.buffer == dst_id;
    let mut dstv = std::mem::take(bufs.raw_mut(dst_id));
    {
        let srcv: &[u8] = if same { &[] } else { bufs.raw(i.src.buffer) };
        for (frac_idx, &(c1, xk, yk, first_patch)) in positions.iter().enumerate() {
            let plane_base = i.src.offset + c1 * plane;
            let frac_base = i.dst.offset + frac_idx * FRACTAL_BYTES;
            for row in 0..FRACTAL_ROWS {
                let out_base = frac_base + row * C0 * 2;
                match geom.element_coord(first_patch + row, xk, yk) {
                    Some((h, w)) => {
                        let in_base = plane_base + (h * iw + w) * C0 * 2;
                        for c0 in 0..C0 {
                            let v = get16(if same { &dstv } else { srcv }, in_base + c0 * 2);
                            put16(&mut dstv, out_base + c0 * 2, v);
                        }
                    }
                    None => {
                        for c0 in 0..C0 {
                            put16(&mut dstv, out_base + c0 * 2, F16::ZERO);
                        }
                    }
                }
            }
        }
    }
    *bufs.raw_mut(dst_id) = dstv;
    bufs.note_peak(dst_id, i.dst.offset + positions.len() * FRACTAL_BYTES);
    true
}

fn exec_col2im(c: &Col2Im, bufs: &mut BufferSet, backend: Backend) -> Result<ExecInfo, SimError> {
    let geom = &c.geom;
    let iw = geom.iw;
    let (xk, yk) = c.k_off;
    let plane_base = c.dst.offset + c.c1 * geom.src_plane_bytes();
    if !(backend.sliced_exec() && col2im_sliced(c, bufs, plane_base)) {
        for rep in 0..c.repeat as usize {
            let frac_base = c.src.offset + rep * FRACTAL_BYTES;
            for row in 0..FRACTAL_ROWS {
                let patch = c.first_patch + rep * FRACTAL_ROWS + row;
                // Patch slots past the grid and padding-border positions
                // are skipped — their contributions do not land anywhere.
                let Some((h, w)) = geom.element_coord(patch, xk, yk) else {
                    continue;
                };
                for c0 in 0..C0 {
                    let src_off = frac_base + (row * C0 + c0) * 2;
                    let dst_off = plane_base + ((h * iw + w) * C0 + c0) * 2;
                    let add = bufs.read_f16(c.src.buffer, src_off)?;
                    let cur = bufs.read_f16(c.dst.buffer, dst_off)?;
                    bufs.write_f16(c.dst.buffer, dst_off, cur + add)?;
                }
            }
        }
    }
    // Architecturally Col2Im "acts as a vector instruction" (Section
    // III-D), so its cycles are attributed to the Vector Unit.
    let src_span = MemSpan::new(c.src, c.repeat as usize * FRACTAL_BYTES);
    // The scatter-add reads *and* writes the destination c1 plane.
    let dst_plane = MemSpan {
        buffer: c.dst.buffer,
        start: plane_base,
        end: plane_base + geom.src_plane_bytes(),
    };
    Ok(ExecInfo {
        mnemonic: "col2im",
        unit: Unit::Vector,
        cycles: 0, // set by execute_info from CostModel::instr_cycles
        repeat: c.repeat as u32,
        useful_lanes: 0,
        total_lanes: 0,
        src: Some(c.src.buffer),
        dst: Some(c.dst.buffer),
        gm_bytes: 0,
        scratch_bytes: 2 * c.repeat as u64 * FRACTAL_BYTES as u64, // RMW
        reads: [Some(src_span), Some(dst_plane), None],
        write: Some(dst_plane),
    })
}

/// Sliced `Col2Im`: validate the source fractal range and the whole
/// destination c1 plane once, then run the scatter-add read-modify-write
/// over raw slices. The running write high-water mark is tracked because
/// skipped patch slots can leave the tail of the plane untouched.
fn col2im_sliced(c: &Col2Im, bufs: &mut BufferSet, plane_base: usize) -> bool {
    let geom = &c.geom;
    let iw = geom.iw;
    let (xk, yk) = c.k_off;
    let reps = c.repeat as usize;
    if reps == 0 {
        return true;
    }
    let dst_ok = c.dst.buffer != BufferId::L0C
        && plane_base.is_multiple_of(2)
        && plane_base
            .checked_add(geom.src_plane_bytes())
            .is_some_and(|end| end <= bufs.capacity(c.dst.buffer));
    if !dst_ok || !f16_rect_ok(bufs, c.src, 0, 1, reps * FRACTAL_BYTES) {
        return false;
    }
    let dst_id = c.dst.buffer;
    let same = c.src.buffer == dst_id;
    let mut dstv = std::mem::take(bufs.raw_mut(dst_id));
    let mut peak: Option<usize> = None;
    {
        let srcv: &[u8] = if same { &[] } else { bufs.raw(c.src.buffer) };
        for rep in 0..reps {
            let frac_base = c.src.offset + rep * FRACTAL_BYTES;
            for row in 0..FRACTAL_ROWS {
                let patch = c.first_patch + rep * FRACTAL_ROWS + row;
                let Some((h, w)) = geom.element_coord(patch, xk, yk) else {
                    continue;
                };
                let src_base = frac_base + row * C0 * 2;
                let dst_base = plane_base + (h * iw + w) * C0 * 2;
                for c0 in 0..C0 {
                    let add = get16(if same { &dstv } else { srcv }, src_base + c0 * 2);
                    let cur = get16(&dstv, dst_base + c0 * 2);
                    put16(&mut dstv, dst_base + c0 * 2, cur + add);
                }
                let end = dst_base + C0 * 2;
                peak = Some(peak.map_or(end, |p| p.max(end)));
            }
        }
    }
    *bufs.raw_mut(dst_id) = dstv;
    if let Some(end) = peak {
        bufs.note_peak(dst_id, end);
    }
    true
}

fn exec_move(m: &DataMove, bufs: &mut BufferSet, backend: Backend) -> Result<ExecInfo, SimError> {
    if m.src.buffer == BufferId::L0C {
        // The L0C -> UB drain converts f32 accumulators to f16; `bytes`
        // counts source (f32) bytes.
        if !m.bytes.is_multiple_of(4) {
            return Err(SimError::Misaligned {
                buffer: BufferId::L0C,
                offset: m.bytes,
                align: 4,
            });
        }
        let n = m.bytes / 4;
        if !(backend.sliced_exec() && drain_sliced(m, bufs, n)) {
            for e in 0..n {
                let v = bufs.read_f32_l0c(m.src.offset + e * 4)?;
                bufs.write_f16(m.dst.buffer, m.dst.offset + e * 2, F16::from_f32(v))?;
            }
        }
    } else {
        bufs.copy(
            m.src.buffer,
            m.src.offset,
            m.dst.buffer,
            m.dst.offset,
            m.bytes,
        )?;
    }
    let touches_gm = m.src.buffer == BufferId::Gm || m.dst.buffer == BufferId::Gm;
    // The L0C drain halves the byte count on the f32 -> f16 conversion.
    let dst_bytes = if m.src.buffer == BufferId::L0C {
        m.bytes / 2
    } else {
        m.bytes
    };
    Ok(ExecInfo {
        mnemonic: "mte_move",
        unit: Unit::Mte,
        cycles: 0, // set by execute_info from CostModel::instr_cycles
        repeat: 1,
        useful_lanes: 0,
        total_lanes: 0,
        src: Some(m.src.buffer),
        dst: Some(m.dst.buffer),
        gm_bytes: if touches_gm { m.bytes as u64 } else { 0 },
        scratch_bytes: if touches_gm { 0 } else { m.bytes as u64 },
        reads: [Some(MemSpan::new(m.src, m.bytes)), None, None],
        write: Some(MemSpan::new(m.dst, dst_bytes)),
    })
}

/// Sliced L0C -> f16 drain: both spans validated once, then a straight
/// convert loop. The f16 destination can never be L0C (`f16_rect_ok`
/// declines it), so the two views are always distinct buffers.
fn drain_sliced(m: &DataMove, bufs: &mut BufferSet, n: usize) -> bool {
    if n == 0 {
        return true;
    }
    let src_ok = m.src.offset.is_multiple_of(4)
        && m.src
            .offset
            .checked_add(m.bytes)
            .is_some_and(|end| end <= bufs.capacity(BufferId::L0C));
    if !src_ok || !f16_rect_ok(bufs, m.dst, 0, 1, n * 2) {
        return false;
    }
    let mut dstv = std::mem::take(bufs.raw_mut(m.dst.buffer));
    {
        let l0c = bufs.raw(BufferId::L0C);
        for e in 0..n {
            let o = m.src.offset + e * 4;
            let v = f32::from_le_bytes([l0c[o], l0c[o + 1], l0c[o + 2], l0c[o + 3]]);
            put16(&mut dstv, m.dst.offset + e * 2, F16::from_f32(v));
        }
    }
    *bufs.raw_mut(m.dst.buffer) = dstv;
    bufs.note_peak(m.dst.buffer, m.dst.offset + n * 2);
    true
}

fn exec_cube(c: &CubeMatmul, bufs: &mut BufferSet, backend: Backend) -> Result<ExecInfo, SimError> {
    const E: usize = dv_isa::cube::FRACTAL_EDGE; // 16
    let (mf, kf, nf) = (c.m_fractals, c.k_fractals, c.n_fractals);
    if !(backend.sliced_exec() && cube_sliced(c, bufs)) {
        // Tiles are stored as row-major grids of fractals, each fractal
        // row-major 16x16 f16 (f32 in L0C).
        let a_frac = |bufs: &BufferSet, fi: usize, fj: usize, r: usize, col: usize| {
            bufs.read_f16(
                c.a.buffer,
                c.a.offset + ((fi * kf + fj) * E * E + r * E + col) * 2,
            )
        };
        let b_frac = |bufs: &BufferSet, fi: usize, fj: usize, r: usize, col: usize| {
            bufs.read_f16(
                c.b.buffer,
                c.b.offset + ((fi * nf + fj) * E * E + r * E + col) * 2,
            )
        };
        for mi in 0..mf * E {
            for ni in 0..nf * E {
                let mut acc = if c.accumulate {
                    bufs.read_f32_l0c(
                        c.c.offset + (((mi / E) * nf + ni / E) * E * E + (mi % E) * E + ni % E) * 4,
                    )?
                } else {
                    0.0f32
                };
                for ki in 0..kf * E {
                    let a = a_frac(bufs, mi / E, ki / E, mi % E, ki % E)?;
                    let b = b_frac(bufs, ki / E, ni / E, ki % E, ni % E)?;
                    acc += a.to_f32() * b.to_f32();
                }
                bufs.write_f32_l0c(
                    c.c.offset + (((mi / E) * nf + ni / E) * E * E + (mi % E) * E + ni % E) * 4,
                    acc,
                )?;
            }
        }
    }
    let a_span = MemSpan::new(c.a, mf * kf * E * E * 2);
    let b_span = MemSpan::new(c.b, kf * nf * E * E * 2);
    let c_span = MemSpan::new(c.c, mf * nf * E * E * 4); // f32 accumulators
    Ok(ExecInfo {
        mnemonic: "cube_mmad",
        unit: Unit::Cube,
        cycles: 0, // set by execute_info from CostModel::instr_cycles
        repeat: 1,
        useful_lanes: 0,
        total_lanes: 0,
        src: Some(c.a.buffer),
        dst: Some(c.c.buffer),
        gm_bytes: 0,
        scratch_bytes: 0,
        reads: [Some(a_span), Some(b_span), c.accumulate.then_some(c_span)],
        write: Some(c_span),
    })
}

/// Sliced Cube matmul: validate the a/b f16 tiles and the L0C
/// accumulator span once, then run the triple loop over raw slices in
/// the same iteration order as the reference (f32 accumulation order is
/// part of the bit-exact contract).
fn cube_sliced(c: &CubeMatmul, bufs: &mut BufferSet) -> bool {
    const E: usize = dv_isa::cube::FRACTAL_EDGE;
    let (mf, kf, nf) = (c.m_fractals, c.k_fractals, c.n_fractals);
    if mf * nf == 0 {
        return true;
    }
    let c_ok = c.c.buffer == BufferId::L0C
        && c.c.offset.is_multiple_of(4)
        && c.c
            .offset
            .checked_add(mf * nf * E * E * 4)
            .is_some_and(|end| end <= bufs.capacity(BufferId::L0C));
    if !c_ok
        || !f16_rect_ok(bufs, c.a, 0, 1, mf * kf * E * E * 2)
        || !f16_rect_ok(bufs, c.b, 0, 1, kf * nf * E * E * 2)
    {
        return false;
    }
    let mut cvec = std::mem::take(bufs.raw_mut(BufferId::L0C));
    {
        let av = bufs.raw(c.a.buffer);
        let bv = bufs.raw(c.b.buffer);
        for mi in 0..mf * E {
            for ni in 0..nf * E {
                let co =
                    c.c.offset + (((mi / E) * nf + ni / E) * E * E + (mi % E) * E + ni % E) * 4;
                let mut acc = if c.accumulate {
                    f32::from_le_bytes([cvec[co], cvec[co + 1], cvec[co + 2], cvec[co + 3]])
                } else {
                    0.0f32
                };
                for ki in 0..kf * E {
                    let ao =
                        c.a.offset + (((mi / E) * kf + ki / E) * E * E + (mi % E) * E + ki % E) * 2;
                    let bo =
                        c.b.offset + (((ki / E) * nf + ni / E) * E * E + (ki % E) * E + ni % E) * 2;
                    acc += get16(av, ao).to_f32() * get16(bv, bo).to_f32();
                }
                cvec[co..co + 4].copy_from_slice(&acc.to_le_bytes());
            }
        }
    }
    *bufs.raw_mut(BufferId::L0C) = cvec;
    bufs.note_peak(BufferId::L0C, c.c.offset + mf * nf * E * E * 4);
    true
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::cost::Capacities;
    use dv_isa::{Addr, Mask};
    use dv_tensor::PoolParams;

    fn setup() -> (BufferSet, CostModel, HwCounters) {
        (
            BufferSet::new(Capacities::ASCEND910, 1 << 20),
            CostModel::ascend910_like(),
            HwCounters::default(),
        )
    }

    fn f(x: f32) -> F16 {
        F16::from_f32(x)
    }

    #[test]
    fn vmax_masked_lanes_only() {
        let (mut bufs, cost, mut ctr) = setup();
        let a: Vec<F16> = (0..128).map(|i| f(i as f32)).collect();
        let b: Vec<F16> = (0..128).map(|i| f((127 - i) as f32)).collect();
        bufs.load_f16_slice(BufferId::Ub, 0, &a).unwrap();
        bufs.load_f16_slice(BufferId::Ub, 256, &b).unwrap();
        let i = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Max,
            Addr::ub(512),
            Addr::ub(0),
            Addr::ub(256),
            Mask::first_n(16),
            1,
        ));
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        let out = bufs.read_f16_slice(BufferId::Ub, 512, 128).unwrap();
        for lane in 0..16 {
            assert_eq!(out[lane].to_f32(), (127 - lane).max(lane) as f32);
        }
        for lane in 16..128 {
            assert_eq!(out[lane], F16::ZERO, "masked lane {lane} must not write");
        }
        assert_eq!(ctr.cycles, cost.issue_overhead + 1);
        assert_eq!(ctr.vector_useful_lanes, 16);
        assert_eq!(ctr.vector_total_lanes, 128);
    }

    #[test]
    fn vector_repeat_with_strides() {
        let (mut bufs, cost, mut ctr) = setup();
        // accumulate max over 3 blocks into one block: dst_stride = 0.
        let init: Vec<F16> = vec![F16::NEG_INFINITY; 128];
        bufs.load_f16_slice(BufferId::Ub, 0, &init).unwrap();
        for rep in 0..3usize {
            let vals: Vec<F16> = (0..128).map(|i| f((i * (rep + 1)) as f32)).collect();
            bufs.load_f16_slice(BufferId::Ub, 1024 + rep * 256, &vals)
                .unwrap();
        }
        let i = Instr::Vector(VectorInstr {
            op: VectorOp::Max,
            dst: Addr::ub(0),
            src0: Addr::ub(0),
            src1: Addr::ub(1024),
            mask: Mask::FULL,
            repeat: 3,
            dst_stride: 0,
            src0_stride: 0,
            src1_stride: 256,
        });
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        let out = bufs.read_f16_slice(BufferId::Ub, 0, 128).unwrap();
        for lane in 0..128 {
            assert_eq!(out[lane].to_f32(), (lane * 3) as f32);
        }
        assert_eq!(ctr.cycles, cost.issue_overhead + 3);
    }

    #[test]
    fn vdup_initialises() {
        let (mut bufs, cost, mut ctr) = setup();
        let i = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Dup(F16::NEG_INFINITY),
            Addr::ub(0),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            2,
        ));
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        let out = bufs.read_f16_slice(BufferId::Ub, 0, 256).unwrap();
        assert!(out.iter().all(|&x| x == F16::NEG_INFINITY));
    }

    #[test]
    fn vcmp_eq_produces_indicator() {
        let (mut bufs, cost, mut ctr) = setup();
        bufs.load_f16_slice(BufferId::Ub, 0, &[f(1.0), f(2.0), f(3.0)])
            .unwrap();
        bufs.load_f16_slice(BufferId::Ub, 256, &[f(1.0), f(9.0), f(3.0)])
            .unwrap();
        let i = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::CmpEq,
            Addr::ub(512),
            Addr::ub(0),
            Addr::ub(256),
            Mask::first_n(3),
            1,
        ));
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        let out = bufs.read_f16_slice(BufferId::Ub, 512, 3).unwrap();
        assert_eq!(out, vec![F16::ONE, F16::ZERO, F16::ONE]);
    }

    #[test]
    fn move_gm_to_l1_and_counters() {
        let (mut bufs, cost, mut ctr) = setup();
        let vals: Vec<F16> = (0..64).map(|i| f(i as f32)).collect();
        bufs.load_f16_slice(BufferId::Gm, 0, &vals).unwrap();
        let i = Instr::Move(DataMove::new(Addr::gm(0), Addr::l1(0), 128));
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        assert_eq!(bufs.read_f16_slice(BufferId::L1, 0, 64).unwrap(), vals);
        assert_eq!(ctr.gm_bytes, 128);
        assert_eq!(ctr.cycles, cost.issue_overhead + cost.move_cycles(128));
    }

    /// Fig. 5 end-to-end: four mode-0 repeats of one Im2Col load the 8x8
    /// image into four fractals in the (kh, kw)-indexed order.
    #[test]
    fn im2col_figure_5() {
        let (mut bufs, cost, mut ctr) = setup();
        let params = PoolParams::new((2, 2), (2, 2));
        let geom = dv_isa::Im2ColGeometry::new(8, 8, 1, params).unwrap();
        // Input plane HWC0 in L1, value = h*8 + w (same for all c0).
        let mut plane = Vec::with_capacity(8 * 8 * C0);
        for h in 0..8 {
            for w in 0..8 {
                for _ in 0..C0 {
                    plane.push(f((h * 8 + w) as f32));
                }
            }
        }
        bufs.load_f16_slice(BufferId::L1, 0, &plane).unwrap();
        let i = Instr::Im2Col(Im2Col {
            geom,
            src: Addr::l1(0),
            dst: Addr::ub(0),
            first_patch: 0,
            k_off: (0, 0),
            c1: 0,
            repeat: 4,
            mode: dv_isa::RepeatMode::Mode0,
        });
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        // Fractal 0 = kernel offset (0,0): patch p at (2*(p/4), 2*(p%4)).
        for p in 0..16 {
            let (ph, pw) = (2 * (p / 4), 2 * (p % 4));
            let v = bufs.read_f16(BufferId::Ub, (p * C0) * 2).unwrap().to_f32();
            assert_eq!(v, (ph * 8 + pw) as f32, "fractal 0 patch {p}");
        }
        // Fractal 1 = kernel offset (0,1): same patches shifted right.
        for p in 0..16 {
            let (ph, pw) = (2 * (p / 4), 2 * (p % 4) + 1);
            let v = bufs
                .read_f16(BufferId::Ub, FRACTAL_BYTES + p * C0 * 2)
                .unwrap()
                .to_f32();
            assert_eq!(v, (ph * 8 + pw) as f32, "fractal 1 patch {p}");
        }
        // Fractal 3 = kernel offset (1,1).
        for p in 0..16 {
            let (ph, pw) = (2 * (p / 4) + 1, 2 * (p % 4) + 1);
            let v = bufs
                .read_f16(BufferId::Ub, 3 * FRACTAL_BYTES + p * C0 * 2)
                .unwrap()
                .to_f32();
            assert_eq!(v, (ph * 8 + pw) as f32, "fractal 3 patch {p}");
        }
        assert_eq!(ctr.issues_of("im2col"), 1);
        assert_eq!(
            ctr.cycles,
            cost.issue_overhead + 4 * cost.im2col_per_fractal
        );
    }

    /// Fig. 6: one Col2Im merges one fractal back into a zero-initialised
    /// output, summing at the scattered positions.
    #[test]
    fn col2im_figure_6() {
        let (mut bufs, cost, mut ctr) = setup();
        let params = PoolParams::new((2, 2), (2, 2));
        let geom = dv_isa::Im2ColGeometry::new(8, 8, 1, params).unwrap();
        // Input fractal at UB+0: patch p row holds value p+1.
        let mut frac = Vec::with_capacity(16 * C0);
        for p in 0..16 {
            for _ in 0..C0 {
                frac.push(f((p + 1) as f32));
            }
        }
        bufs.load_f16_slice(BufferId::Ub, 0, &frac).unwrap();
        // Output tile at UB+8192 (already zero).
        let i = Instr::Col2Im(Col2Im {
            geom,
            src: Addr::ub(0),
            dst: Addr::ub(8192),
            first_patch: 0,
            k_off: (0, 0),
            c1: 0,
            repeat: 1,
        });
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        // Patch p maps to input position (2*(p/4), 2*(p%4)); offset (0,0).
        for p in 0..16 {
            let (h, w) = (2 * (p / 4), 2 * (p % 4));
            let off = 8192 + ((h * 8 + w) * C0) * 2;
            assert_eq!(
                bufs.read_f16(BufferId::Ub, off).unwrap().to_f32(),
                (p + 1) as f32
            );
        }
        // Non-patch positions stay zero.
        assert_eq!(
            bufs.read_f16(BufferId::Ub, 8192 + C0 * 2).unwrap(),
            F16::ZERO
        );
        // Running the same Col2Im again doubles the values (sum semantics).
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        assert_eq!(bufs.read_f16(BufferId::Ub, 8192).unwrap().to_f32(), 2.0);
        assert_eq!(ctr.issues_of("col2im"), 2);
    }

    #[test]
    fn cube_matmul_single_fractal() {
        let (mut bufs, cost, mut ctr) = setup();
        // A = I (16x16 identity), B = ramp; C must equal B.
        let mut a = vec![F16::ZERO; 256];
        for i in 0..16 {
            a[i * 16 + i] = F16::ONE;
        }
        let b: Vec<F16> = (0..256).map(|i| f((i % 23) as f32)).collect();
        bufs.load_f16_slice(BufferId::L0A, 0, &a).unwrap();
        bufs.load_f16_slice(BufferId::L0B, 0, &b).unwrap();
        let i = Instr::Cube(CubeMatmul {
            a: Addr::new(BufferId::L0A, 0),
            b: Addr::new(BufferId::L0B, 0),
            c: Addr::new(BufferId::L0C, 0),
            m_fractals: 1,
            k_fractals: 1,
            n_fractals: 1,
            accumulate: false,
        });
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        for e in 0..256 {
            assert_eq!(bufs.read_f32_l0c(e * 4).unwrap(), b[e].to_f32());
        }
        assert_eq!(ctr.cycles, cost.issue_overhead + cost.cube_per_fractal_pair);
    }

    #[test]
    fn cube_accumulate_mode() {
        let (mut bufs, cost, mut ctr) = setup();
        let ones = vec![F16::ONE; 256];
        bufs.load_f16_slice(BufferId::L0A, 0, &ones).unwrap();
        bufs.load_f16_slice(BufferId::L0B, 0, &ones).unwrap();
        let mut mm = CubeMatmul {
            a: Addr::new(BufferId::L0A, 0),
            b: Addr::new(BufferId::L0B, 0),
            c: Addr::new(BufferId::L0C, 0),
            m_fractals: 1,
            k_fractals: 1,
            n_fractals: 1,
            accumulate: false,
        };
        execute(&Instr::Cube(mm), &mut bufs, &cost, &mut ctr).unwrap();
        assert_eq!(bufs.read_f32_l0c(0).unwrap(), 16.0);
        mm.accumulate = true;
        execute(&Instr::Cube(mm), &mut bufs, &cost, &mut ctr).unwrap();
        assert_eq!(bufs.read_f32_l0c(0).unwrap(), 32.0);
    }

    #[test]
    fn l0c_drain_converts_f32_to_f16() {
        let (mut bufs, cost, mut ctr) = setup();
        bufs.write_f32_l0c(0, 3.125).unwrap();
        bufs.write_f32_l0c(4, -2.0).unwrap();
        let i = Instr::Move(DataMove::new(Addr::new(BufferId::L0C, 0), Addr::ub(0), 8));
        execute(&i, &mut bufs, &cost, &mut ctr).unwrap();
        assert_eq!(bufs.read_f16(BufferId::Ub, 0).unwrap().to_f32(), 3.125);
        assert_eq!(bufs.read_f16(BufferId::Ub, 2).unwrap().to_f32(), -2.0);
    }

    #[test]
    fn oob_vector_access_errors() {
        let (mut bufs, cost, mut ctr) = setup();
        let cap = bufs.capacity(BufferId::Ub);
        let i = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(cap - 64), // 128 lanes x 2B = 256B needed
            Addr::ub(0),
            Addr::ub(256),
            Mask::FULL,
            1,
        ));
        assert!(matches!(
            execute(&i, &mut bufs, &cost, &mut ctr),
            Err(SimError::OutOfBounds { .. })
        ));
    }

    /// Run one instruction under every backend on identically-prepared
    /// buffer sets and require the result value, every buffer's bytes,
    /// the peaks, and the counters to match the `Scalar` reference
    /// exactly — including error cases and the partial writes that
    /// precede them.
    fn assert_backends_identical(i: &Instr, load: impl Fn(&mut BufferSet)) {
        let mut reference: Option<(Result<(), SimError>, BufferSet, HwCounters)> = None;
        for backend in Backend::ALL {
            let mut bufs = BufferSet::new(Capacities::ASCEND910, 1 << 16);
            load(&mut bufs);
            let cost = CostModel::ascend910_like().with_backend(backend);
            let mut ctr = HwCounters::default();
            let r = execute(i, &mut bufs, &cost, &mut ctr);
            match &reference {
                None => reference = Some((r, bufs, ctr)),
                Some((r0, b0, c0)) => {
                    assert_eq!(&r, r0, "{backend}: result diverged");
                    assert_eq!(&ctr, c0, "{backend}: counters diverged");
                    assert_eq!(bufs.peaks(), b0.peaks(), "{backend}: peaks diverged");
                    for id in [
                        BufferId::Gm,
                        BufferId::L1,
                        BufferId::L0A,
                        BufferId::L0B,
                        BufferId::L0C,
                        BufferId::Ub,
                    ] {
                        assert!(bufs.raw(id) == b0.raw(id), "{backend}: {id} bytes diverged");
                    }
                }
            }
        }
    }

    #[test]
    fn sliced_vector_at_exact_capacity_boundary() {
        let cap = Capacities::ASCEND910.ub;
        // The last 256-byte block of UB: in bounds by exactly zero slack.
        let i = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(cap - 256),
            Addr::ub(0),
            Addr::ub(256),
            Mask::FULL,
            1,
        ));
        assert_backends_identical(&i, |b| {
            let vals: Vec<F16> = (0..256).map(|k| f((k % 19) as f32)).collect();
            b.load_f16_slice(BufferId::Ub, 0, &vals).unwrap();
        });
    }

    #[test]
    fn sliced_oob_error_and_partial_writes_match_scalar() {
        let cap = Capacities::ASCEND910.ub;
        // Three strided repeats; the third starts at the capacity edge,
        // so the reference writes two blocks and then errors. The sliced
        // path must decline up front and reproduce both the bytes and
        // the error.
        let i = Instr::Vector(VectorInstr {
            op: VectorOp::Add,
            dst: Addr::ub(cap - 512),
            src0: Addr::ub(0),
            src1: Addr::ub(0),
            mask: Mask::FULL,
            repeat: 3,
            dst_stride: 256,
            src0_stride: 0,
            src1_stride: 0,
        });
        assert_backends_identical(&i, |b| {
            let vals: Vec<F16> = (0..128).map(|k| f((k % 7) as f32)).collect();
            b.load_f16_slice(BufferId::Ub, 0, &vals).unwrap();
        });
    }

    #[test]
    fn sliced_misalignment_and_odd_strides_match_scalar() {
        // Odd destination offset: misaligned before any write.
        let i = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Copy,
            Addr::ub(129),
            Addr::ub(0),
            Addr::ub(0),
            Mask::first_n(4),
            1,
        ));
        assert_backends_identical(&i, |_| {});
        // Odd stride: the second repeat's base is misaligned, so the
        // reference writes one block and then errors mid-instruction.
        let i = Instr::Vector(VectorInstr {
            op: VectorOp::Copy,
            dst: Addr::ub(1024),
            src0: Addr::ub(0),
            src1: Addr::ub(0),
            mask: Mask::first_n(2),
            repeat: 2,
            dst_stride: 257,
            src0_stride: 0,
            src1_stride: 0,
        });
        assert_backends_identical(&i, |b| {
            b.load_f16_slice(BufferId::Ub, 0, &[f(3.0), f(4.0)])
                .unwrap();
        });
    }

    #[test]
    fn sliced_empty_mask_touches_nothing_like_scalar() {
        let cap = Capacities::ASCEND910.ub;
        // Every lane disabled: even an out-of-range base must not fire,
        // because no element is touched (matching the reference loop).
        let i = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(cap - 2),
            Addr::ub(cap - 2),
            Addr::ub(cap - 2),
            Mask::first_n(0),
            2,
        ));
        assert_backends_identical(&i, |_| {});
    }

    #[test]
    fn sliced_accumulate_in_place_matches_scalar() {
        // src0 == dst with stride 0: each repeat must observe the
        // previous repeat's writes (the max-accumulate idiom).
        let i = Instr::Vector(VectorInstr {
            op: VectorOp::Max,
            dst: Addr::ub(0),
            src0: Addr::ub(0),
            src1: Addr::ub(1024),
            mask: Mask::FULL,
            repeat: 3,
            dst_stride: 0,
            src0_stride: 0,
            src1_stride: 256,
        });
        assert_backends_identical(&i, |b| {
            b.load_f16_slice(BufferId::Ub, 0, &vec![F16::NEG_INFINITY; 128])
                .unwrap();
            for rep in 0..3usize {
                let vals: Vec<F16> = (0..128).map(|k| f(((k * (rep + 1)) % 31) as f32)).collect();
                b.load_f16_slice(BufferId::Ub, 1024 + rep * 256, &vals)
                    .unwrap();
            }
        });
    }

    #[test]
    fn sliced_im2col_and_col2im_match_scalar_at_boundaries() {
        let params = PoolParams::new((2, 2), (2, 2));
        let geom = dv_isa::Im2ColGeometry::new(8, 8, 1, params).unwrap();
        let plane: Vec<F16> = (0..8 * 8 * C0).map(|k| f((k % 13) as f32)).collect();
        let cap = Capacities::ASCEND910.ub;
        // Destination fractals ending exactly at UB capacity.
        let i = Instr::Im2Col(Im2Col {
            geom,
            src: Addr::l1(0),
            dst: Addr::ub(cap - 4 * FRACTAL_BYTES),
            first_patch: 0,
            k_off: (0, 0),
            c1: 0,
            repeat: 4,
            mode: dv_isa::RepeatMode::Mode0,
        });
        assert_backends_identical(&i, |b| {
            b.load_f16_slice(BufferId::L1, 0, &plane).unwrap();
        });
        // And one fractal beyond: the reference errors partway through.
        let i = Instr::Im2Col(Im2Col {
            geom,
            src: Addr::l1(0),
            dst: Addr::ub(cap - 3 * FRACTAL_BYTES),
            first_patch: 0,
            k_off: (0, 0),
            c1: 0,
            repeat: 4,
            mode: dv_isa::RepeatMode::Mode0,
        });
        assert_backends_identical(&i, |b| {
            b.load_f16_slice(BufferId::L1, 0, &plane).unwrap();
        });
        // Col2Im scatter-add with src and dst in the same buffer, the
        // destination plane flush against the capacity edge.
        let plane_bytes = geom.src_plane_bytes();
        let i = Instr::Col2Im(Col2Im {
            geom,
            src: Addr::ub(0),
            dst: Addr::ub(cap - plane_bytes),
            first_patch: 0,
            k_off: (0, 0),
            c1: 0,
            repeat: 1,
        });
        assert_backends_identical(&i, |b| {
            let frac: Vec<F16> = (0..16 * C0).map(|k| f((k % 9 + 1) as f32)).collect();
            b.load_f16_slice(BufferId::Ub, 0, &frac).unwrap();
        });
    }

    #[test]
    fn sliced_drain_and_cube_match_scalar() {
        let cap = Capacities::ASCEND910.ub;
        // L0C drain landing exactly at the UB capacity edge.
        let i = Instr::Move(DataMove::new(
            Addr::new(BufferId::L0C, 0),
            Addr::ub(cap - 64),
            128,
        ));
        assert_backends_identical(&i, |b| {
            for e in 0..32 {
                b.write_f32_l0c(e * 4, e as f32 * 0.25 - 2.0).unwrap();
            }
        });
        // And one past it: the reference converts a prefix, then errors.
        let i = Instr::Move(DataMove::new(
            Addr::new(BufferId::L0C, 0),
            Addr::ub(cap - 62),
            128,
        ));
        assert_backends_identical(&i, |b| {
            for e in 0..32 {
                b.write_f32_l0c(e * 4, e as f32 * 0.5).unwrap();
            }
        });
        // Cube with accumulate: f32 accumulation order is part of the
        // bit-exact contract.
        let i = Instr::Cube(CubeMatmul {
            a: Addr::new(BufferId::L0A, 0),
            b: Addr::new(BufferId::L0B, 0),
            c: Addr::new(BufferId::L0C, 0),
            m_fractals: 1,
            k_fractals: 2,
            n_fractals: 1,
            accumulate: true,
        });
        assert_backends_identical(&i, |b| {
            let a: Vec<F16> = (0..512).map(|k| f(((k % 17) as f32) * 0.125)).collect();
            let bb: Vec<F16> = (0..512)
                .map(|k| f(((k % 23) as f32) * 0.25 - 1.0))
                .collect();
            b.load_f16_slice(BufferId::L0A, 0, &a).unwrap();
            b.load_f16_slice(BufferId::L0B, 0, &bb).unwrap();
            for e in 0..256 {
                b.write_f32_l0c(e * 4, (e % 11) as f32).unwrap();
            }
        });
    }

    #[test]
    fn invalid_instruction_rejected_at_execute() {
        let (mut bufs, cost, mut ctr) = setup();
        let i = Instr::Move(DataMove::new(Addr::gm(0), Addr::new(BufferId::L0A, 0), 4));
        assert!(matches!(
            execute(&i, &mut bufs, &cost, &mut ctr),
            Err(SimError::Isa(_))
        ));
    }
}
