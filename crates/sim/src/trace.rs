//! Instruction-level execution tracing.
//!
//! The paper's speedup claims rest on *where* cycles go — issue overhead
//! vs. repeat iterations, Vector Unit vs. SCU vs. MTE. [`Trace`] records
//! one [`TraceEvent`] per executed instruction (mnemonic, unit, issue
//! cycle, duration, repeat count, lane usage, buffer endpoints and bytes
//! moved), gated behind [`TraceConfig`] so an untraced run pays only a
//! branch per instruction. Two consumers are built in:
//!
//! * [`chrome_trace_json`] — export to the Chrome trace-event format,
//!   loadable in `chrome://tracing` or <https://ui.perfetto.dev> (one
//!   process per AI Core, one thread row per functional unit, and a flow
//!   arrow from each producer to the consumer it stalled — the paper's
//!   Fig. 4 pipeline view);
//! * [`Breakdown`] — a per-(unit, mnemonic) cycle/issue/stall/lane/byte
//!   aggregation, rendered as an aligned text report.
//!
//! Invariant (asserted by the end-to-end tests): the sum of all traced
//! durations equals [`HwCounters::busy_cycles`] for the same execution —
//! and equals [`HwCounters::cycles`] under the single-issue model, where
//! nothing overlaps.

use crate::counters::{HwCounters, Unit};
use crate::lifetimes::BufferLifetimes;
use dv_isa::BufferId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tracing configuration for a core or chip run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record per-instruction events. Off by default: the recorder is a
    /// single predictable branch per instruction when disabled.
    pub enabled: bool,
    /// Optional cap on recorded events per core (0 = unlimited). When the
    /// cap is hit, further events are counted in [`Trace::dropped`] but
    /// not stored — cycle sums remain exact via the counters.
    pub max_events_per_core: usize,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub const OFF: TraceConfig = TraceConfig {
        enabled: false,
        max_events_per_core: 0,
    };

    /// Tracing enabled, unbounded.
    pub const ON: TraceConfig = TraceConfig {
        enabled: true,
        max_events_per_core: 0,
    };

    /// Tracing enabled with a per-core event cap.
    pub const fn capped(max_events_per_core: usize) -> TraceConfig {
        TraceConfig {
            enabled: true,
            max_events_per_core,
        }
    }
}

/// One executed instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Index of the instruction in its program.
    pub pc: usize,
    /// Index of the program within the core's work list.
    pub program: usize,
    /// Stable mnemonic (see `dv_isa::Instr::mnemonic`).
    pub mnemonic: &'static str,
    /// Functional unit that executed the instruction.
    pub unit: Unit,
    /// Core-local cycle at which the instruction issued.
    pub start: u64,
    /// Cycles charged (issue overhead + iteration cost).
    pub cycles: u64,
    /// Cycles the instruction waited on its issue pipe for a scoreboard
    /// hazard to clear (always 0 under the single-issue model).
    pub stall: u64,
    /// Trace-event index of the latest program-order writer of any byte
    /// this instruction reads (RAW) — the source of the Chrome-trace
    /// flow arrow. Program order is issue-timing-independent, so the
    /// recorded arrows are identical with buffer-slot renaming on or
    /// off. `None` under the single-issue model.
    pub dep: Option<usize>,
    /// Hardware repeat count (1 for non-repeating instructions).
    pub repeat: u32,
    /// Enabled vector lanes summed over repeats (0 for non-vector).
    pub useful_lanes: u64,
    /// Total lane slots over repeats (0 for non-vector).
    pub total_lanes: u64,
    /// Source buffer, when the instruction reads one.
    pub src: Option<BufferId>,
    /// Destination buffer, when the instruction writes one.
    pub dst: Option<BufferId>,
    /// Bytes of data traffic the instruction caused.
    pub bytes: u64,
}

/// The recorded execution of one AI Core.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Physical core id (filled in by the chip; 0 for a lone core).
    pub core: usize,
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
    /// Events not stored because `max_events_per_core` was reached.
    pub dropped: u64,
    /// Extra completion cycles the chip's memory model booked against
    /// this core for shared L2/HBM contention (always 0 under
    /// [`MemoryModel::Independent`](crate::chip::MemoryModel) and for a
    /// lone core's own trace). Not part of any event: contention
    /// stretches the core's completion time without belonging to one
    /// instruction, so it rides on the trace itself and shows up in the
    /// Chrome export as a trailing `gm-contention` slice on the MTE row.
    pub contention: u64,
}

impl Trace {
    /// Sum of all recorded durations (equals `HwCounters::cycles` when no
    /// events were dropped).
    pub fn total_cycles(&self) -> u64 {
        self.events.iter().map(|e| e.cycles).sum()
    }

    /// Record an event, honouring the configured cap.
    pub(crate) fn push(&mut self, cfg: &TraceConfig, event: TraceEvent) {
        if cfg.max_events_per_core != 0 && self.events.len() >= cfg.max_events_per_core {
            self.dropped += 1;
        } else {
            self.events.push(event);
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn unit_tid(unit: Unit) -> usize {
    match unit {
        Unit::Vector => 0,
        Unit::Scu => 1,
        Unit::Mte => 2,
        Unit::Cube => 3,
    }
}

/// Thread row hosting a buffer's live-range slices (instruction rows use
/// the unit tids 0–3).
fn buffer_tid(buffer: BufferId) -> usize {
    10 + match buffer {
        BufferId::Gm => 0,
        BufferId::L1 => 1,
        BufferId::L0A => 2,
        BufferId::L0B => 3,
        BufferId::L0C => 4,
        BufferId::Ub => 5,
    }
}

/// Export traces (one per core) as Chrome trace-event JSON.
///
/// Open the resulting file in `chrome://tracing` or
/// <https://ui.perfetto.dev>: each AI Core appears as a process, each
/// functional unit as a thread row, each instruction as a complete (`X`)
/// event whose duration is its simulated cycle count (1 cycle = 1 µs of
/// trace time). Cross-unit RAW dependencies (recorded by the dual-pipe
/// scoreboard in [`TraceEvent::dep`]) additionally emit flow (`s`/`f`)
/// arrows from the producer's retirement to the consumer's issue — e.g.
/// from an `mte_move` load to the `vmax` that computes on it, the
/// pipeline picture of the paper's Fig. 4.
pub fn chrome_trace_json(traces: &[Trace]) -> String {
    chrome_trace_json_with_lifetimes(traces, &[])
}

/// [`chrome_trace_json`] plus buffer live ranges: each
/// [`crate::lifetimes::LiveRange`] becomes an async (`b`/`e`) slice pair
/// with category `live-range` on a per-buffer thread row of its core's
/// process. A double-buffered kernel shows two interleaved slice chains
/// per region (slot A and slot B overlapping in time); a single-buffered
/// one shows back-to-back reuse of one offset.
pub fn chrome_trace_json_with_lifetimes(traces: &[Trace], lifetimes: &[BufferLifetimes]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut flow_id = 0usize;
    let mut push = |out: &mut String, ev: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&ev);
    };
    for t in traces {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"AI Core {}\"}}}}",
                t.core, t.core
            ),
        );
        for unit in Unit::ALL {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    t.core,
                    unit_tid(unit),
                    escape_json(unit.name())
                ),
            );
        }
        for e in &t.events {
            let mut args = format!(
                "\"pc\":{},\"program\":{},\"repeat\":{},\"bytes\":{}",
                e.pc, e.program, e.repeat, e.bytes
            );
            if e.stall > 0 {
                let _ = write!(args, ",\"stall\":{}", e.stall);
            }
            if e.total_lanes > 0 {
                let _ = write!(
                    args,
                    ",\"useful_lanes\":{},\"total_lanes\":{}",
                    e.useful_lanes, e.total_lanes
                );
            }
            if let Some(src) = e.src {
                let _ = write!(args, ",\"src\":\"{src}\"");
            }
            if let Some(dst) = e.dst {
                let _ = write!(args, ",\"dst\":\"{dst}\"");
            }
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"name\":\"{}\",\
                     \"cat\":\"{}\",\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                    t.core,
                    unit_tid(e.unit),
                    escape_json(e.mnemonic),
                    escape_json(e.unit.name()),
                    e.start,
                    e.cycles
                ),
            );
        }
        // Flow arrows for cross-unit RAW dependencies: from the producer's
        // retirement on its unit row to the consumer's issue on its own.
        // Same-unit dependencies are implicit in the row's ordering, so
        // arrows are reserved for the inter-pipe handoffs (move -> vector
        // op) that the dual-pipe model exists to expose.
        for e in &t.events {
            let Some(seq) = e.dep else { continue };
            let Some(p) = t.events.get(seq) else { continue };
            if p.unit == e.unit {
                continue;
            }
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"s\",\"pid\":{},\"tid\":{},\"name\":\"dep\",\
                     \"cat\":\"flow\",\"id\":{},\"ts\":{}}}",
                    t.core,
                    unit_tid(p.unit),
                    flow_id,
                    p.start + p.cycles
                ),
            );
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{},\"tid\":{},\"name\":\"dep\",\
                     \"cat\":\"flow\",\"id\":{},\"ts\":{}}}",
                    t.core,
                    unit_tid(e.unit),
                    flow_id,
                    e.start
                ),
            );
            flow_id += 1;
        }
        // Shared-memory contention: one slice on the MTE row starting
        // where the core's own work ends — the completion-time stretch
        // the chip's memory model booked against this core.
        if t.contention > 0 {
            let ts = t
                .events
                .iter()
                .map(|e| e.start + e.cycles)
                .max()
                .unwrap_or(0);
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"name\":\"gm-contention\",\
                     \"cat\":\"contention\",\"ts\":{},\"dur\":{},\"args\":{{}}}}",
                    t.core,
                    unit_tid(Unit::Mte),
                    ts,
                    t.contention
                ),
            );
        }
    }
    // Buffer live ranges: async slice pairs on one thread row per
    // buffer, under the owning core's process.
    let mut range_id = 0usize;
    for lt in lifetimes {
        let mut named = [false; 6];
        for r in &lt.ranges {
            let tid = buffer_tid(r.buffer);
            if !std::mem::replace(&mut named[tid - 10], true) {
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\
                         \"args\":{{\"name\":\"{} live ranges\"}}}}",
                        lt.core, tid, r.buffer
                    ),
                );
            }
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"b\",\"cat\":\"live-range\",\"id\":{},\"pid\":{},\"tid\":{},\
                     \"name\":\"{} [{}..{})\",\"ts\":{},\
                     \"args\":{{\"bytes\":{},\"version\":{}}}}}",
                    range_id,
                    lt.core,
                    tid,
                    r.buffer,
                    r.start,
                    r.end,
                    r.first_write,
                    r.bytes(),
                    r.version
                ),
            );
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"e\",\"cat\":\"live-range\",\"id\":{},\"pid\":{},\"tid\":{},\
                     \"name\":\"{} [{}..{})\",\"ts\":{}}}",
                    range_id, lt.core, tid, r.buffer, r.start, r.end, r.last_use
                ),
            );
            range_id += 1;
        }
    }
    out.push_str("]}");
    out
}

/// One row of the per-unit/per-mnemonic breakdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakdownRow {
    /// Functional unit.
    pub unit: Unit,
    /// Instruction mnemonic.
    pub mnemonic: &'static str,
    /// Number of issues.
    pub issues: u64,
    /// Total cycles charged.
    pub cycles: u64,
    /// Total cycles stalled on scoreboard hazards before issue.
    pub stalls: u64,
    /// Total hardware repeats.
    pub repeats: u64,
    /// Enabled vector lanes (0 for non-vector rows).
    pub useful_lanes: u64,
    /// Lane slots (0 for non-vector rows).
    pub total_lanes: u64,
    /// Bytes of data traffic.
    pub bytes: u64,
}

impl BreakdownRow {
    /// Lane utilization in `[0, 1]`, or `None` for non-vector rows.
    pub fn utilization(&self) -> Option<f64> {
        (self.total_lanes > 0).then(|| self.useful_lanes as f64 / self.total_lanes as f64)
    }
}

/// Per-(unit, mnemonic) aggregation of one or more traces — the roofline
/// view: which unit burned the cycles and how well its lanes were used.
#[derive(Clone, Debug, Default)]
pub struct Breakdown {
    /// Aggregated rows, keyed and sorted by `(unit, mnemonic)`.
    pub rows: Vec<BreakdownRow>,
    /// Shared-memory contention stalls summed over all traced cores
    /// ([`Trace::contention`]) — kept outside the rows because contention
    /// belongs to no instruction, but checked by
    /// [`Breakdown::verify_against`] so the books still balance.
    pub contention_stalls: u64,
}

impl Breakdown {
    /// Aggregate over traces (typically: all cores of one chip run).
    pub fn from_traces<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> Breakdown {
        let mut map: BTreeMap<(Unit, &'static str), BreakdownRow> = BTreeMap::new();
        let mut contention_stalls = 0u64;
        for t in traces {
            contention_stalls += t.contention;
            for e in &t.events {
                let row = map.entry((e.unit, e.mnemonic)).or_insert(BreakdownRow {
                    unit: e.unit,
                    mnemonic: e.mnemonic,
                    issues: 0,
                    cycles: 0,
                    stalls: 0,
                    repeats: 0,
                    useful_lanes: 0,
                    total_lanes: 0,
                    bytes: 0,
                });
                row.issues += 1;
                row.cycles += e.cycles;
                row.stalls += e.stall;
                row.repeats += e.repeat as u64;
                row.useful_lanes += e.useful_lanes;
                row.total_lanes += e.total_lanes;
                row.bytes += e.bytes;
            }
        }
        Breakdown {
            rows: map.into_values().collect(),
            contention_stalls,
        }
    }

    /// Total cycles across all rows.
    pub fn total_cycles(&self) -> u64 {
        self.rows.iter().map(|r| r.cycles).sum()
    }

    /// Total stall cycles across all rows.
    pub fn total_stalls(&self) -> u64 {
        self.rows.iter().map(|r| r.stalls).sum()
    }

    /// Cycles attributed to one unit.
    pub fn unit_cycles(&self, unit: Unit) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.unit == unit)
            .map(|r| r.cycles)
            .sum()
    }

    /// Render as an aligned text table, most expensive row first.
    pub fn render(&self) -> String {
        let mut rows = self.rows.clone();
        rows.sort_by_key(|r| std::cmp::Reverse(r.cycles));
        let total = self.total_cycles().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:<12} {:>10} {:>12} {:>8} {:>8} {:>12} {:>7} {:>6}",
            "unit", "mnemonic", "issues", "cycles", "cyc%", "stall%", "bytes", "repeat", "lane%"
        );
        for r in &rows {
            let lane = r
                .utilization()
                .map(|u| format!("{:.1}", 100.0 * u))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "{:<8} {:<12} {:>10} {:>12} {:>7.1}% {:>7.1}% {:>12} {:>7} {:>6}",
                r.unit.name(),
                r.mnemonic,
                r.issues,
                r.cycles,
                100.0 * r.cycles as f64 / total as f64,
                100.0 * r.stalls as f64 / total as f64,
                r.bytes,
                r.repeats,
                lane
            );
        }
        let _ = writeln!(
            out,
            "total cycles: {} (stalled: {})",
            self.total_cycles(),
            self.total_stalls()
        );
        if self.contention_stalls > 0 {
            let _ = writeln!(out, "gm contention stalls: {}", self.contention_stalls);
        }
        out
    }

    /// Cross-check against hardware counters: every mnemonic's issue
    /// count and every unit's cycle total must match. Returns the first
    /// discrepancy found. Durations are compared against
    /// [`HwCounters::busy_cycles`]: under the dual-pipe model the wall
    /// clock is a makespan, but per-instruction charges still sum to the
    /// unit-busy total in both issue models.
    pub fn verify_against(&self, counters: &HwCounters) -> Result<(), String> {
        if self.total_cycles() != counters.busy_cycles() {
            return Err(format!(
                "trace cycles {} != counter busy cycles {}",
                self.total_cycles(),
                counters.busy_cycles()
            ));
        }
        if self.total_stalls() != counters.stall_cycles {
            return Err(format!(
                "trace stalls {} != counter stall cycles {}",
                self.total_stalls(),
                counters.stall_cycles
            ));
        }
        for unit in Unit::ALL {
            if self.unit_cycles(unit) != counters.cycles_of(unit) {
                return Err(format!(
                    "unit {} trace cycles {} != counter cycles {}",
                    unit,
                    self.unit_cycles(unit),
                    counters.cycles_of(unit)
                ));
            }
        }
        for r in &self.rows {
            if r.issues != counters.issues_of(r.mnemonic) {
                return Err(format!(
                    "mnemonic {} trace issues {} != counter issues {}",
                    r.mnemonic,
                    r.issues,
                    counters.issues_of(r.mnemonic)
                ));
            }
        }
        if self.contention_stalls != counters.contention_stalls {
            return Err(format!(
                "trace contention stalls {} != counter contention stalls {}",
                self.contention_stalls, counters.contention_stalls
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(mnemonic: &'static str, unit: Unit, start: u64, cycles: u64) -> TraceEvent {
        TraceEvent {
            pc: 0,
            program: 0,
            mnemonic,
            unit,
            start,
            cycles,
            stall: 0,
            dep: None,
            repeat: 1,
            useful_lanes: 0,
            total_lanes: 0,
            src: None,
            dst: None,
            bytes: 0,
        }
    }

    #[test]
    fn breakdown_aggregates_and_sums() {
        let t = Trace {
            core: 0,
            events: vec![
                ev("vmax", Unit::Vector, 0, 17),
                ev("vmax", Unit::Vector, 17, 17),
                ev("mte_move", Unit::Mte, 34, 20),
            ],
            dropped: 0,
            contention: 0,
        };
        let b = Breakdown::from_traces([&t]);
        assert_eq!(b.rows.len(), 2);
        assert_eq!(b.total_cycles(), 54);
        assert_eq!(b.unit_cycles(Unit::Vector), 34);
        assert_eq!(b.unit_cycles(Unit::Mte), 20);
        let vmax = b.rows.iter().find(|r| r.mnemonic == "vmax").unwrap();
        assert_eq!(vmax.issues, 2);
        let rendered = b.render();
        assert!(rendered.contains("vmax"));
        assert!(rendered.contains("total cycles: 54"));
    }

    #[test]
    fn verify_against_counters() {
        let t = Trace {
            core: 0,
            events: vec![ev("vadd", Unit::Vector, 0, 10)],
            dropped: 0,
            contention: 0,
        };
        let mut c = HwCounters::default();
        c.record("vadd", Unit::Vector, 10);
        assert_eq!(Breakdown::from_traces([&t]).verify_against(&c), Ok(()));
        c.record("vadd", Unit::Vector, 1);
        assert!(Breakdown::from_traces([&t]).verify_against(&c).is_err());
    }

    #[test]
    fn chrome_json_contains_events_and_metadata() {
        let t = Trace {
            core: 3,
            events: vec![ev("im2col", Unit::Scu, 5, 36)],
            dropped: 0,
            contention: 0,
        };
        let json = chrome_trace_json(&[t]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"im2col\""));
        assert!(json.contains("\"ts\":5"));
        assert!(json.contains("\"dur\":36"));
        assert!(json.contains("AI Core 3"));
    }

    #[test]
    fn chrome_json_emits_flow_arrows_for_cross_unit_deps() {
        let producer = ev("mte_move", Unit::Mte, 0, 20);
        let mut consumer = ev("vmax", Unit::Vector, 20, 17);
        consumer.stall = 20;
        consumer.dep = Some(0);
        // Same-unit dependency: implicit in row order, no arrow.
        let mut chained = ev("vadd", Unit::Vector, 37, 17);
        chained.dep = Some(1);
        let t = Trace {
            core: 0,
            events: vec![producer, consumer, chained],
            dropped: 0,
            contention: 0,
        };
        let json = chrome_trace_json(&[t]);
        assert!(json.contains("\"stall\":20"));
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
        // Arrow leaves the move at its retirement and lands on the vmax
        // at its issue cycle.
        assert!(json.contains(
            "\"ph\":\"s\",\"pid\":0,\"tid\":2,\"name\":\"dep\",\"cat\":\"flow\",\"id\":0,\"ts\":20"
        ));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":0,\"name\":\"dep\",\"cat\":\"flow\",\"id\":0,\"ts\":20"));
    }

    #[test]
    fn chrome_json_emits_live_range_slices() {
        use crate::lifetimes::LiveRange;
        let lt = BufferLifetimes {
            core: 1,
            ranges: vec![
                LiveRange {
                    buffer: BufferId::Ub,
                    start: 0,
                    end: 256,
                    first_write: 5,
                    last_use: 40,
                    version: 0,
                },
                LiveRange {
                    buffer: BufferId::Ub,
                    start: 256,
                    end: 512,
                    first_write: 20,
                    last_use: 60,
                    version: 3,
                },
            ],
        };
        let json = chrome_trace_json_with_lifetimes(&[], &[lt]);
        // One thread-name row for the UB, one b/e pair per range.
        assert_eq!(json.matches("\"name\":\"UB live ranges\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"b\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"e\"").count(), 2);
        assert!(json.contains(
            "{\"ph\":\"b\",\"cat\":\"live-range\",\"id\":0,\"pid\":1,\"tid\":15,\
             \"name\":\"UB [0..256)\",\"ts\":5,\"args\":{\"bytes\":256,\"version\":0}}"
        ));
        assert!(
            json.contains("\"args\":{\"bytes\":256,\"version\":3}"),
            "the span's version rides along in the slice args"
        );
        assert!(json.contains(
            "{\"ph\":\"e\",\"cat\":\"live-range\",\"id\":1,\"pid\":1,\"tid\":15,\
             \"name\":\"UB [256..512)\",\"ts\":60}"
        ));
        // Plain export of the same traces carries no live-range events.
        assert!(!chrome_trace_json(&[]).contains("live-range"));
    }

    #[test]
    fn breakdown_tracks_stalls_and_render_shows_them() {
        let mut a = ev("vmax", Unit::Vector, 0, 10);
        a.stall = 4;
        let b = ev("vmax", Unit::Vector, 10, 10);
        let t = Trace {
            core: 0,
            events: vec![a, b],
            dropped: 0,
            contention: 0,
        };
        let bd = Breakdown::from_traces([&t]);
        assert_eq!(bd.total_stalls(), 4);
        let rendered = bd.render();
        assert!(rendered.contains("stall%"));
        assert!(rendered.contains("(stalled: 4)"));

        let mut c = HwCounters::default();
        c.record("vmax", Unit::Vector, 10);
        c.record("vmax", Unit::Vector, 10);
        assert!(bd.verify_against(&c).is_err(), "stall mismatch detected");
        c.stall_cycles = 4;
        assert_eq!(bd.verify_against(&c), Ok(()));
    }

    #[test]
    fn contention_rides_through_breakdown_and_chrome_export() {
        let t = Trace {
            core: 2,
            events: vec![ev("mte_move", Unit::Mte, 0, 20)],
            dropped: 0,
            contention: 77,
        };
        let bd = Breakdown::from_traces([&t]);
        assert_eq!(bd.contention_stalls, 77);
        assert!(bd.render().contains("gm contention stalls: 77"));

        // The books must balance: counters missing the booked stall fail
        // verification, matching counters pass.
        let mut c = HwCounters::default();
        c.record("mte_move", Unit::Mte, 20);
        assert!(bd.verify_against(&c).is_err(), "unbalanced contention");
        c.contention_stalls = 77;
        assert_eq!(bd.verify_against(&c), Ok(()));

        // Chrome export: one gm-contention slice on the MTE row, starting
        // where the core's own work ends.
        let json = chrome_trace_json(&[t]);
        assert!(json.contains(
            "{\"ph\":\"X\",\"pid\":2,\"tid\":2,\"name\":\"gm-contention\",\
             \"cat\":\"contention\",\"ts\":20,\"dur\":77,\"args\":{}}"
        ));
        // A contention-free trace carries no such slice.
        let quiet = Trace {
            core: 0,
            events: vec![ev("vadd", Unit::Vector, 0, 5)],
            dropped: 0,
            contention: 0,
        };
        assert!(!chrome_trace_json(&[quiet]).contains("gm-contention"));
    }

    #[test]
    fn render_survives_empty_and_zero_cycle_breakdowns() {
        // No traces at all: the percentage columns must not divide by the
        // zero cycle total.
        let empty = Breakdown::from_traces([]);
        let rendered = empty.render();
        assert!(!rendered.contains("NaN"), "empty render: {rendered}");
        assert!(rendered.contains("total cycles: 0"));

        // Rows exist but every charge is zero cycles — same hazard.
        let t = Trace {
            core: 0,
            events: vec![ev("vmax", Unit::Vector, 0, 0)],
            dropped: 0,
            contention: 0,
        };
        let zero = Breakdown::from_traces([&t]);
        assert_eq!(zero.total_cycles(), 0);
        let rendered = zero.render();
        assert!(!rendered.contains("NaN"), "zero-cycle render: {rendered}");
        assert!(rendered.contains("vmax"));
        assert!(rendered.contains("0.0%"));
    }

    #[test]
    fn cap_drops_but_counts() {
        let cfg = TraceConfig::capped(1);
        let mut t = Trace::default();
        t.push(&cfg, ev("a", Unit::Mte, 0, 1));
        t.push(&cfg, ev("b", Unit::Mte, 1, 1));
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.dropped, 1);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
