#![deny(missing_docs)]
//! # davinci-pooling
//!
//! A from-scratch reproduction of *"Pooling Acceleration in the DaVinci
//! Architecture Using Im2col and Col2im Instructions"* (Rohwedder et al.,
//! IPDPSW 2021) on a functional, cycle-approximate simulator of a DaVinci
//! (Ascend 910) AI Core.
//!
//! The paper shows that DaVinci's `Im2Col` (a transforming *load*) and
//! `Col2Im` (a scatter-add *vector* instruction) — both designed for
//! convolution — also accelerate **pooling**: up to 3.2x for MaxPool
//! forward, 5x with the argmax mask, and 5.8x for MaxPool backward,
//! because the im2col layout lets the 128-lane Vector Unit run with a
//! saturated mask and hardware repeats.
//!
//! ## Quick start
//!
//! ```
//! use davinci_pooling::prelude::*;
//!
//! // A 32-channel 32x32 fp16 image in DaVinci's fractal NC1HWC0 layout.
//! let input = Nchw::from_fn(1, 32, 32, 32, |_, c, h, w| {
//!     F16::from_f32(((c + 3 * h + 7 * w) % 11) as f32)
//! })
//! .to_nc1hwc0();
//!
//! let engine = PoolingEngine::ascend910(); // 32 simulated AI cores
//! let params = PoolParams::K3S2;           // kernel (3,3), stride (2,2)
//!
//! let (baseline, base_run) = engine
//!     .maxpool_forward(&input, params, ForwardImpl::Standard)
//!     .unwrap();
//! let (accelerated, fast_run) = engine
//!     .maxpool_forward(&input, params, ForwardImpl::Im2col)
//!     .unwrap();
//!
//! assert_eq!(baseline.data(), accelerated.data()); // bit-identical f16
//! assert!(fast_run.cycles < base_run.cycles);      // and faster
//! ```
//!
//! ## Crates
//!
//! | crate | contents |
//! |---|---|
//! | [`fp16`] | software IEEE binary16 |
//! | [`tensor`] | NCHW / NC1HWC0 / im2col layouts + golden references |
//! | [`isa`] | the DaVinci instruction model (`Im2Col`, `Col2Im`, vector ops, MTE, Cube) |
//! | [`sim`] | the AI-Core/chip simulator with hardware counters |
//! | [`akg`] | the TVM/AKG-like lowering machinery (tiling, vectorisation) |
//! | [`core`] | the pooling implementations — the paper's contribution |
//! | [`conv`] | convolution on the Cube Unit (substrate check) |
//! | [`nn`] | a small CNN inference stack composed of the above |
//! | [`serve`] | std-only async job front-end (worker pool over the engine) |

pub use dv_akg as akg;
pub use dv_conv as conv;
pub use dv_core as core;
pub use dv_fp16 as fp16;
pub use dv_isa as isa;
pub use dv_nn as nn;
pub use dv_serve as serve;
pub use dv_sim as sim;
pub use dv_tensor as tensor;

/// Everything a typical user needs.
pub mod prelude {
    pub use dv_core::{ForwardImpl, MergeImpl, PoolingEngine};
    pub use dv_fp16::F16;
    pub use dv_serve::{JobOp, JobSpec, Server};
    pub use dv_sim::{Backend, Chip, CostModel, MemoryModel};
    pub use dv_tensor::{Nc1hwc0, Nchw, Padding, PatchTensor, PoolParams};
}
