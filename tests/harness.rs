//! Integration tests of the benchmark harness itself: every experiment of
//! the repro binary must run, produce well-formed tables, and reproduce
//! the paper's qualitative results.

use dv_bench::experiments;

#[test]
fn fig7_tables_reproduce_the_paper_shape() {
    // Speedups must (a) exceed 1 everywhere, (b) grow with input size,
    // and (c) be ordered forward < forward+argmax < backward at the
    // largest input — the qualitative content of Fig. 7.
    let parse = |t: &dv_bench::Table| -> Vec<f64> {
        t.rows
            .iter()
            .map(|r| {
                r.last()
                    .unwrap()
                    .trim_end_matches('x')
                    .parse::<f64>()
                    .unwrap()
            })
            .collect()
    };
    let a = experiments::fig7a();
    let b = experiments::fig7b();
    let c = experiments::fig7c();
    let (sa, sb, sc) = (parse(&a), parse(&b), parse(&c));
    for (name, s) in [("fig7a", &sa), ("fig7b", &sb), ("fig7c", &sc)] {
        assert_eq!(s.len(), 3, "{name}: three InceptionV3 inputs");
        for (i, v) in s.iter().enumerate() {
            assert!(*v > 1.0, "{name} row {i}: accelerated must win ({v})");
        }
        assert!(
            s[0] >= s[2],
            "{name}: speedup should grow with input size ({s:?})"
        );
    }
    // ordering at the largest input (paper: 3.2x < 5x < 5.8x)
    assert!(
        sa[0] < sb[0],
        "forward < forward+argmax ({} vs {})",
        sa[0],
        sb[0]
    );
    assert!(
        sb[0] < sc[0],
        "forward+argmax < backward ({} vs {})",
        sb[0],
        sc[0]
    );
}

#[test]
fn fig8_crossover_matches_the_paper() {
    let cycles_of = |t: &dv_bench::Table, col: usize| -> Vec<u64> {
        t.rows
            .iter()
            .map(|r| r[col].parse::<u64>().unwrap())
            .collect()
    };
    // Fig. 8a (stride 1): direct Maxpool (col 1) beats Im2col (col 2)
    // at every size.
    let a = experiments::fig8(1);
    let std1 = cycles_of(&a, 1);
    let im1 = cycles_of(&a, 2);
    for (i, (s, m)) in std1.iter().zip(&im1).enumerate() {
        assert!(s < m, "fig8a row {i}: direct ({s}) must beat im2col ({m})");
    }
    // Fig. 8b (stride 2): Im2col wins from modest sizes on; expansion in
    // between; X-Y split better than standard but worse than im2col.
    let b = experiments::fig8(2);
    let hws = cycles_of(&b, 0);
    let std2 = cycles_of(&b, 1);
    let im2 = cycles_of(&b, 2);
    let exp2 = cycles_of(&b, 3);
    let xy2 = cycles_of(&b, 4);
    for i in 0..hws.len() {
        if hws[i] < 16 {
            continue; // tiny sizes are issue-overhead noise in the paper too
        }
        assert!(
            im2[i] < std2[i],
            "fig8b hw={}: im2col must beat standard",
            hws[i]
        );
        assert!(
            im2[i] <= exp2[i],
            "fig8b hw={}: im2col <= expansion",
            hws[i]
        );
        assert!(
            exp2[i] < std2[i],
            "fig8b hw={}: expansion beats standard",
            hws[i]
        );
        assert!(
            im2[i] < xy2[i],
            "fig8b hw={}: im2col beats X-Y split",
            hws[i]
        );
        assert!(
            xy2[i] < std2[i],
            "fig8b hw={}: X-Y split beats standard",
            hws[i]
        );
    }
    // Fig. 8c (stride 3, no duplication): Im2col wins.
    let c = experiments::fig8(3);
    let hws = cycles_of(&c, 0);
    let std3 = cycles_of(&c, 1);
    let im3 = cycles_of(&c, 2);
    for i in 0..hws.len() {
        if hws[i] < 16 {
            continue;
        }
        assert!(
            im3[i] < std3[i],
            "fig8c hw={}: im2col must beat standard",
            hws[i]
        );
    }
}

#[test]
fn table1_covers_all_cnns_and_wins_everywhere() {
    let t = experiments::table1();
    assert_eq!(t.rows.len(), 13);
    for row in &t.rows {
        let speedup: f64 = row.last().unwrap().trim_end_matches('x').parse().unwrap();
        assert!(speedup > 1.0, "{}: im2col must win ({speedup})", row[0]);
    }
}

#[test]
fn ablation_shows_issue_overhead_is_the_mechanism() {
    let t = experiments::ablate();
    let speedups: Vec<f64> = t
        .rows
        .iter()
        .map(|r| r.last().unwrap().trim_end_matches('x').parse().unwrap())
        .collect();
    // with the calibrated model im2col wins clearly...
    assert!(speedups[0] > 2.0);
    // ...but with zero per-instruction issue overhead the baseline's
    // 16-lane flood of instructions is free and im2col's data
    // duplication makes it *lose* — the repeat-amortisation mechanism in
    // one number.
    assert!(
        speedups[1] < speedups[0],
        "removing issue overhead must shrink the speedup"
    );
}

#[test]
fn avgpool_and_conv_experiments_run() {
    let avg = experiments::avgpool();
    assert_eq!(avg.rows.len(), 3);
    for row in &avg.rows {
        let f: f64 = row[3].trim_end_matches('x').parse().unwrap();
        let b: f64 = row[6].trim_end_matches('x').parse().unwrap();
        assert!(f > 1.0 && b > 1.0, "avgpool accelerated must win");
    }
    let conv = experiments::conv_substrate();
    for row in &conv.rows {
        assert_eq!(row.last().unwrap(), "true", "conv must match reference");
    }
}

#[test]
fn kernel_ablation_speedup_decreases_with_duplication() {
    let t = experiments::kernels();
    let speedups: Vec<f64> = t
        .rows
        .iter()
        .map(|r| r.last().unwrap().trim_end_matches('x').parse().unwrap())
        .collect();
    for w in speedups.windows(2) {
        assert!(
            w[0] > w[1],
            "speedup must fall as the duplication factor grows ({speedups:?})"
        );
    }
    assert!(speedups.iter().all(|&s| s > 1.0), "im2col still wins");
}

#[test]
fn fusion_beats_unfused_pipeline() {
    let t = experiments::fusion();
    let unfused: u64 = t.rows[0][3].parse().unwrap();
    let fused: u64 = t.rows[1][3].parse().unwrap();
    assert!(
        fused < unfused,
        "fused ({fused}) must beat unfused ({unfused})"
    );
    let ulp: u32 = t.rows[1][5].parse().unwrap();
    assert!(ulp <= 4);
}

#[test]
fn thresholds_grow_with_ub_capacity() {
    let t = experiments::threshold();
    for col in 1..t.columns.len() {
        let vals: Vec<u64> = t.rows.iter().map(|r| r[col].parse().unwrap()).collect();
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "column {col}: threshold must grow with UB");
        }
    }
}

#[test]
fn scaling_table_shows_band_splitting_winning_past_c1() {
    let t = experiments::scaling();
    // at 32 cores: split < C1-only for both implementations
    let last = t.rows.last().unwrap();
    let std_c1: u64 = last[1].parse().unwrap();
    let std_split: u64 = last[2].parse().unwrap();
    let im_c1: u64 = last[3].parse().unwrap();
    let im_split: u64 = last[4].parse().unwrap();
    assert!(std_split < std_c1);
    assert!(im_split < im_c1);
}

#[test]
fn fig8_plots_render() {
    let t = experiments::fig8(2);
    let plot = dv_bench::plot::plot_table(&t, "H=W", "cycles");
    assert!(plot.contains("Fig. 8b"));
    // all four implementations appear in the legend
    for label in ["Maxpool", "Im2col", "expansion", "X-Y split"] {
        assert!(plot.contains(label), "legend missing {label}");
    }
}

#[test]
fn csv_round_trip() {
    let t = experiments::fig7a();
    let csv = t.to_csv();
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap().split(',').count(),
        t.columns.len(),
        "header arity"
    );
    assert_eq!(lines.count(), t.rows.len());
}
