//! End-to-end checks of the instruction-level observability layer.
//!
//! The invariant the trace recorder promises: the hardware counters and
//! the trace describe the *same* execution, so the sum of per-instruction
//! trace durations is exactly `HwCounters::busy_cycles()` — no double
//! charging, no missing instructions — and, under the legacy single-issue
//! model, that sum *is* the wall clock. Verified here on a hand-built
//! Fig. 6-style Col2Im program and on full pooling engine runs, plus a
//! round-trip of the Chrome trace export through the JSON parser and
//! determinism checks across reruns, chip clones, and both issue models.

use davinci_pooling::prelude::*;
use davinci_pooling::sim::{
    chrome_trace_json_with_lifetimes, pipe_of, AiCore, Breakdown, Chip, ChipRun, TraceConfig, Unit,
};
use davinci_pooling::tensor::reference;
use dv_isa::{Addr, BufferId, Col2Im, DataMove, Im2ColGeometry, Instr, Program};

const C0: usize = 16;

fn det(seed: usize, i: usize) -> F16 {
    F16::from_f32(((seed * 31 + i * 7) % 13) as f32 * 0.25 - 1.5)
}

/// Build the Fig. 6 Col2Im program: zero the output tile, DMA the patch
/// fractal into the UB, scatter-sum it back with Col2Im.
fn col2im_program() -> Program {
    let params = PoolParams::new((2, 2), (2, 2));
    let geom = Im2ColGeometry::new(8, 8, 1, params).unwrap();
    let mut p = Program::new();
    // Output tile: 8*8*C0 f16 elements at UB+8192, zero-initialised.
    dv_akg::zero_region(&mut p, Addr::ub(8192), 8 * 8 * C0).unwrap();
    // Fractal: GM -> UB.
    p.push(Instr::Move(DataMove::new(
        Addr::gm(0),
        Addr::ub(0),
        16 * C0 * 2,
    )))
    .unwrap();
    // Scatter-sum (Fig. 6, Section III-D).
    p.push(Instr::Col2Im(Col2Im {
        geom,
        src: Addr::ub(0),
        dst: Addr::ub(8192),
        first_patch: 0,
        k_off: (0, 0),
        c1: 0,
        repeat: 1,
    }))
    .unwrap();
    p
}

/// One 16-patch fractal in GM: patch p's row holds the value p+1.
fn col2im_fractal() -> Vec<F16> {
    let mut frac = Vec::with_capacity(16 * C0);
    for p in 0..16 {
        for _ in 0..C0 {
            frac.push(F16::from_f32((p + 1) as f32));
        }
    }
    frac
}

fn check_col2im_result(core: &AiCore) {
    // Functional result: patch p landed at (2*(p/4), 2*(p%4)).
    for patch in 0..16 {
        let (h, w) = (2 * (patch / 4), 2 * (patch % 4));
        let off = 8192 + (h * 8 + w) * C0 * 2;
        assert_eq!(
            core.buffers().read_f16(BufferId::Ub, off).unwrap().to_f32(),
            (patch + 1) as f32
        );
    }
}

/// The single-pipe invariant: with the legacy model selected the
/// scheduler reproduces the PR 1 serial timing exactly — the counters
/// equal the per-instruction trace sums, events are contiguous, and no
/// stall cycles appear.
#[test]
fn counters_equal_trace_sums_for_col2im_program() {
    let mut core = AiCore::new(CostModel::single_issue(), 1 << 20);
    core.set_trace(TraceConfig::ON);
    core.load_gm(0, &col2im_fractal()).unwrap();
    let p = col2im_program();
    core.run(&p).unwrap();
    check_col2im_result(&core);

    // Observability result: one event per executed instruction, durations
    // summing to the counter total, agreeing per unit and per mnemonic.
    let trace = core.trace();
    assert_eq!(trace.events.len(), p.len());
    assert_eq!(trace.dropped, 0);
    let manual_sum: u64 = trace.events.iter().map(|e| e.cycles).sum();
    assert_eq!(manual_sum, core.counters().cycles);
    assert_eq!(trace.total_cycles(), core.counters().cycles);
    assert_eq!(core.counters().busy_cycles(), core.counters().cycles);
    assert_eq!(core.counters().stall_cycles, 0);
    Breakdown::from_traces([trace])
        .verify_against(core.counters())
        .expect("breakdown agrees with counters");

    // Events are contiguous on the single-issue core: each instruction
    // starts where the previous one ended, with no stalls booked.
    let mut cursor = 0;
    for e in &trace.events {
        assert_eq!(e.start, cursor, "{} issued at the wrong cycle", e.mnemonic);
        assert_eq!(e.stall, 0);
        cursor += e.cycles;
    }
    let col2im = trace.events.last().unwrap();
    assert_eq!(col2im.mnemonic, "col2im");
    assert_eq!(col2im.src, Some(BufferId::Ub));
    assert_eq!(col2im.dst, Some(BufferId::Ub));
}

/// The same program under the dual-pipe model: bit-identical results, a
/// wall clock no larger than the serial sum, and trace durations that
/// still sum to the unit-busy total. The vdup zero-fill (Vector) and the
/// GM->UB fractal load (MTE) touch disjoint UB ranges, so the two pipes
/// overlap them and the makespan strictly beats the serial sum.
#[test]
fn dual_pipe_overlaps_col2im_program() {
    let mut core = AiCore::new(CostModel::ascend910_like(), 1 << 20);
    core.set_trace(TraceConfig::ON);
    core.load_gm(0, &col2im_fractal()).unwrap();
    let p = col2im_program();
    core.run(&p).unwrap();
    check_col2im_result(&core);

    let trace = core.trace();
    assert_eq!(trace.events.len(), p.len());
    assert_eq!(trace.total_cycles(), core.counters().busy_cycles());
    assert!(
        core.counters().cycles < core.counters().busy_cycles(),
        "independent MTE and Vector work must overlap"
    );
    Breakdown::from_traces([trace])
        .verify_against(core.counters())
        .expect("breakdown agrees with counters");

    // The fractal load issues at cycle 0 in parallel with the zero-fill,
    // and the col2im that consumes both records its RAW producer.
    let mv = trace
        .events
        .iter()
        .find(|e| e.mnemonic == "mte_move")
        .unwrap();
    assert_eq!(mv.start, 0, "load overlaps the zero-fill");
    let col2im = trace.events.last().unwrap();
    assert_eq!(col2im.mnemonic, "col2im");
    assert!(
        col2im.dep.is_some(),
        "col2im depends on in-flight producers"
    );
}

/// The invariant holds for a full Fig. 7-style engine run across every
/// core of the chip, for both pooling implementations and both issue
/// models: trace durations sum to the unit-busy total (which is the wall
/// clock itself under single-issue).
#[test]
fn counters_equal_trace_sums_for_engine_runs() {
    let input =
        Nchw::from_fn(1, 64, 35, 35, |_, c, h, w| det(5, c * 1225 + h * 35 + w)).to_nc1hwc0();
    for cost in [CostModel::ascend910_like(), CostModel::single_issue()] {
        let engine = PoolingEngine::new(Chip::new(32, cost)).with_trace(TraceConfig::ON);
        for impl_ in [ForwardImpl::Standard, ForwardImpl::Im2col] {
            let (_, run) = engine
                .maxpool_forward(&input, PoolParams::K3S2, impl_)
                .expect("forward");
            assert!(!run.traces.is_empty(), "{impl_:?}: tracing was enabled");
            let sum: u64 = run
                .traces
                .iter()
                .flat_map(|t| t.events.iter())
                .map(|e| e.cycles)
                .sum();
            assert_eq!(
                sum,
                run.total.busy_cycles(),
                "{impl_:?}/{:?}: trace durations must sum to the busy total",
                cost.issue_model
            );
            run.breakdown()
                .verify_against(&run.total)
                .expect("breakdown agrees with merged counters");
        }
    }
}

/// `maxpool_backward` with tracing produces Chrome trace-event JSON that
/// parses and carries the structure Perfetto needs: process/thread
/// metadata and complete (`X`) events with timestamps and durations.
#[test]
fn maxpool_backward_chrome_trace_parses() {
    let input =
        Nchw::from_fn(1, 32, 17, 17, |_, c, h, w| det(9, c * 289 + h * 17 + w)).to_nc1hwc0();
    let params = PoolParams::K3S2;
    let engine = PoolingEngine::ascend910().with_trace(TraceConfig::ON);
    let (pooled, mask, _) = engine
        .maxpool_forward_with_argmax(&input, params, ForwardImpl::Im2col)
        .expect("forward");
    let grads = Nc1hwc0::from_fn(1, input.c1, pooled.h, pooled.w, |_, c1, h, w, c0| {
        F16::from_f32(((c1 + h * 2 + w * 3 + c0) % 5) as f32)
    });
    let (dx, run) = engine
        .maxpool_backward(&mask, &grads, params, input.h, input.w, MergeImpl::Col2Im)
        .expect("backward");
    let want = reference::maxpool_backward(&mask, &grads, &params, input.h, input.w).unwrap();
    assert_eq!(dx.data(), want.data(), "tracing must not change results");

    let json = run.chrome_trace_json();
    assert_eq!(
        json,
        chrome_trace_json_with_lifetimes(&run.traces, &run.lifetimes)
    );
    let doc = dv_bench::json::parse(&json).expect("chrome trace JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut complete = 0u64;
    let mut col2im_events = 0u64;
    let mut flow_starts = 0u64;
    let mut flow_ends = 0u64;
    let mut range_begins = 0u64;
    let mut range_ends = 0u64;
    let mut saw_process_meta = false;
    for e in events {
        match e.get("ph").and_then(|v| v.as_str()) {
            Some("X") => {
                complete += 1;
                assert!(e.get("ts").and_then(|v| v.as_u64()).is_some());
                assert!(e.get("dur").and_then(|v| v.as_u64()).is_some());
                assert!(e.get("pid").and_then(|v| v.as_u64()).is_some());
                assert!(e.get("tid").and_then(|v| v.as_u64()).is_some());
                if e.get("name").and_then(|v| v.as_str()) == Some("col2im") {
                    col2im_events += 1;
                }
            }
            Some("M") => {
                if e.get("name").and_then(|v| v.as_str()) == Some("process_name") {
                    saw_process_meta = true;
                }
            }
            // Buffer live ranges: async begin/end pairs on the
            // per-buffer thread rows, from the lifetime analysis.
            Some("b") | Some("e") => {
                assert_eq!(e.get("cat").and_then(|v| v.as_str()), Some("live-range"));
                assert!(e.get("id").and_then(|v| v.as_u64()).is_some());
                assert!(e.get("ts").and_then(|v| v.as_u64()).is_some());
                if e.get("ph").and_then(|v| v.as_str()) == Some("b") {
                    range_begins += 1;
                } else {
                    range_ends += 1;
                }
            }
            // Flow arrows: producer retirement ("s") paired with consumer
            // issue ("f") by id — the Fig. 4 pipeline handoffs.
            Some("s") | Some("f") => {
                assert_eq!(e.get("cat").and_then(|v| v.as_str()), Some("flow"));
                assert!(e.get("id").and_then(|v| v.as_u64()).is_some());
                assert!(e.get("ts").and_then(|v| v.as_u64()).is_some());
                if e.get("ph").and_then(|v| v.as_str()) == Some("s") {
                    flow_starts += 1;
                } else {
                    flow_ends += 1;
                }
            }
            ph => panic!("unexpected event phase {ph:?}"),
        }
    }
    let traced: u64 = run.traces.iter().map(|t| t.events.len() as u64).sum();
    assert_eq!(complete, traced, "one X event per traced instruction");
    assert!(col2im_events > 0, "backward pass used Col2Im");
    assert!(saw_process_meta, "per-core process_name metadata present");
    assert!(
        flow_starts > 0,
        "dual-pipe run must carry cross-unit flow arrows"
    );
    assert_eq!(flow_starts, flow_ends, "every arrow has both endpoints");
    let ranges: u64 = run.lifetimes.iter().map(|l| l.ranges.len() as u64).sum();
    assert!(ranges > 0, "traced run must record buffer live ranges");
    assert_eq!(range_begins, ranges, "one async begin per live range");
    assert_eq!(range_begins, range_ends, "every live range closes");

    // The rendered breakdown is the human-readable view of the same data.
    let report = run.breakdown().render();
    assert!(report.contains("col2im"));
    assert!(report.contains("stall%"));
    assert!(report.contains(&format!(
        "total cycles: {} (stalled: {})",
        run.total.busy_cycles(),
        run.total.stall_cycles
    )));
}

/// The dual-pipe stall accounting never double-books: each instruction's
/// hazard wait lands on exactly one pipe, so per core and per pipe
/// `busy + stall <= makespan`, the two pipe-stall counters sum to
/// `stall_cycles`, and that total equals the sum of the per-event stall
/// tags in the trace.
#[test]
fn pipe_stall_accounting_never_double_books() {
    // A multi-band double-buffered run on one core: plenty of cross-pipe
    // hazards, and the makespan bound is per-core exact.
    let input =
        Nchw::from_fn(1, 16, 96, 96, |_, c, h, w| det(13, c * 9216 + h * 96 + w)).to_nc1hwc0();
    let engine =
        PoolingEngine::new(Chip::new(1, CostModel::ascend910_like())).with_trace(TraceConfig::ON);
    let pipe_units: [&[Unit]; 2] = [&[Unit::Mte, Unit::Scu], &[Unit::Vector, Unit::Cube]];
    for impl_ in [ForwardImpl::Standard, ForwardImpl::Im2col] {
        let (_, run) = engine
            .maxpool_forward(&input, PoolParams::K3S2, impl_)
            .expect("forward");
        assert!(
            run.total.stall_cycles > 0,
            "{impl_:?}: a banded dual-pipe run hits hazards"
        );
        for (i, c) in run.per_core.iter().enumerate() {
            let makespan = run.core_cycles[i];
            for (pipe, units) in pipe_units.iter().enumerate() {
                let busy: u64 = units.iter().map(|u| c.cycles_of(*u)).sum();
                assert!(
                    pipe_units[pipe].iter().all(|u| pipe_of(*u) == pipe),
                    "pipe map drifted"
                );
                assert!(
                    busy + c.pipe_stalls[pipe] <= makespan,
                    "{impl_:?} core {i} pipe {pipe}: busy {busy} + stall {} \
                     exceeds the makespan {makespan}",
                    c.pipe_stalls[pipe]
                );
            }
            assert_eq!(
                c.pipe_stalls.iter().sum::<u64>(),
                c.stall_cycles,
                "{impl_:?} core {i}: per-pipe stalls must sum to the total"
            );
        }
        for t in &run.traces {
            let tags: u64 = t.events.iter().map(|e| e.stall).sum();
            assert_eq!(
                tags, run.per_core[t.core].stall_cycles,
                "{impl_:?} core {}: trace stall tags must sum to the counter",
                t.core
            );
        }
    }
}

/// Tracing must not perturb the simulation: identical cycle counts and
/// identical outputs with tracing on and off, and the capped config keeps
/// cycle totals exact while bounding memory.
#[test]
fn tracing_is_observationally_transparent() {
    let input =
        Nchw::from_fn(1, 16, 21, 21, |_, c, h, w| det(7, c * 441 + h * 21 + w)).to_nc1hwc0();
    let params = PoolParams::K3S2;

    let quiet = PoolingEngine::ascend910();
    let traced = PoolingEngine::ascend910().with_trace(TraceConfig::ON);
    let capped = PoolingEngine::ascend910().with_trace(TraceConfig::capped(4));

    let (out_q, run_q) = quiet
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    let (out_t, run_t) = traced
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    let (out_c, run_c) = capped
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();

    assert_eq!(out_q.data(), out_t.data());
    assert_eq!(out_q.data(), out_c.data());
    assert_eq!(run_q.total.cycles, run_t.total.cycles);
    assert_eq!(run_q.total.cycles, run_c.total.cycles);
    assert!(run_q.traces.is_empty(), "no traces kept when disabled");

    for t in &run_c.traces {
        assert!(t.events.len() <= 4, "cap respected");
        assert!(t.dropped > 0, "overflow recorded, not lost silently");
    }

    // Peaks are tracked regardless of tracing.
    assert_eq!(run_q.peaks, run_t.peaks);
    assert!(run_q.peaks.of(dv_isa::BufferId::Ub) > 0);
}

/// A VGG-shaped backward VAdd merge at a 64 KiB UB: the planner picks
/// the versioned layout and the dual-pipe renamer rotates band-cycled
/// slots into a measured win. One workload, three issue models, same
/// program (rotation planning pinned on so every engine lowers
/// identically).
fn renaming_case() -> [(&'static str, ChipRun); 3] {
    let (h, w, params) = (56usize, 56usize, PoolParams::K2S2);
    let input =
        Nchw::from_fn(1, 16, h, w, |_, c, y, x| det(17, c * h * w + y * w + x)).to_nc1hwc0();
    let mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
    let (oh, ow) = params.out_dims(h, w).unwrap();
    let dy = Nc1hwc0::from_fn(1, 1, oh, ow, |_, _, y, x, c0| {
        F16::from_f32(((y + x + c0) % 5) as f32)
    });
    let want = reference::maxpool_backward(&mask, &dy, &params, h, w).unwrap();
    [
        ("dual_pipe", CostModel::ascend910_like()),
        ("dual_pipe_norename", CostModel::dual_pipe_no_rename()),
        ("single_issue", CostModel::single_issue()),
    ]
    .map(|(name, cost)| {
        let mut chip = Chip::new(1, cost);
        chip.caps.ub = 65536;
        let engine = PoolingEngine::new(chip)
            .with_rotation_planning(true)
            .with_trace(TraceConfig::ON);
        let (dx, run) = engine
            .maxpool_backward(&mask, &dy, params, h, w, MergeImpl::VAdd)
            .expect("backward");
        assert_eq!(
            dx.data(),
            want.data(),
            "{name}: issue model changed the backward result"
        );
        (name, run)
    })
}

/// Stall accounting stays honest when the scheduler renames: per-pipe
/// stalls still sum to the total (each wait booked against exactly one
/// pipe), the WAR/WAW waits a rotation eliminates are *gone* — not
/// rebooked as RAW, so the renamed run's total stall time strictly drops
/// — and per-instruction busy charges are identical across single-issue,
/// dual-pipe, and dual-pipe + renaming.
#[test]
fn stall_accounting_stays_honest_under_renaming() {
    let [(_, renamed), (_, norename), (_, single)] = renaming_case();
    assert!(
        renamed.total.renames > 0,
        "the versioned plan must exercise the renamer"
    );
    assert_eq!(norename.total.renames, 0);
    assert_eq!(
        single.total.stall_cycles, 0,
        "the serial machine never stalls"
    );
    for run in [&renamed, &norename, &single] {
        assert_eq!(
            run.total.busy_cycles(),
            single.total.busy_cycles(),
            "per-instruction charges must be issue-model-independent"
        );
    }
    assert!(
        renamed.total.stall_cycles < norename.total.stall_cycles,
        "rotated-away WAR/WAW waits must vanish, not move: {} !< {}",
        renamed.total.stall_cycles,
        norename.total.stall_cycles
    );
    assert!(renamed.cycles < norename.cycles, "renaming must win here");

    let pipe_units: [&[Unit]; 2] = [&[Unit::Mte, Unit::Scu], &[Unit::Vector, Unit::Cube]];
    for (name, run) in [("dual_pipe", &renamed), ("dual_pipe_norename", &norename)] {
        for (i, c) in run.per_core.iter().enumerate() {
            assert_eq!(
                c.pipe_stalls.iter().sum::<u64>(),
                c.stall_cycles,
                "{name} core {i}: per-pipe stalls must sum to the total"
            );
            for (pipe, units) in pipe_units.iter().enumerate() {
                let busy: u64 = units.iter().map(|u| c.cycles_of(*u)).sum();
                assert!(
                    busy + c.pipe_stalls[pipe] <= c.cycles,
                    "{name} core {i} pipe {pipe}: busy {busy} + stall {} \
                     exceeds the makespan {}",
                    c.pipe_stalls[pipe],
                    c.cycles
                );
            }
        }
        for t in &run.traces {
            let tags: u64 = t.events.iter().map(|e| e.stall).sum();
            assert_eq!(
                tags, run.per_core[t.core].stall_cycles,
                "{name} core {}: trace stall tags must sum to the counter",
                t.core
            );
        }
    }
}

/// The renamer's signature in the observability layer: rotated writes
/// open version `n + 1` of a span while version `n` is still being read,
/// so the lifetime analysis records overlapping versions of one span,
/// the versions ride through the Chrome trace JSON, and the counters
/// still equal the trace makespan by construction.
#[test]
fn versioned_live_ranges_round_trip_chrome_trace() {
    let [(_, renamed), ..] = renaming_case();

    // Overlapping versions of one span exist in the recorded lifetimes.
    let mut overlapping = 0usize;
    let mut max_version = 0u64;
    for lt in &renamed.lifetimes {
        for (i, r) in lt.ranges.iter().enumerate() {
            max_version = max_version.max(r.version);
            overlapping += lt.ranges[i + 1..]
                .iter()
                .filter(|s| {
                    s.buffer == r.buffer
                        && s.start == r.start
                        && s.version == r.version + 1
                        && s.first_write < r.last_use
                })
                .count();
        }
    }
    assert!(max_version > 0, "rotations must open versions past 0");
    assert!(
        overlapping > 0,
        "a granted rotation must overlap consecutive versions of a span"
    );

    // Counters equal the trace makespan by construction, renaming or not.
    for t in &renamed.traces {
        let makespan = t.events.iter().map(|e| e.start + e.cycles).max().unwrap();
        assert_eq!(
            makespan, renamed.per_core[t.core].cycles,
            "core {}: trace makespan must equal the cycle counter",
            t.core
        );
    }

    // The versions round-trip through the Chrome trace JSON.
    let json = chrome_trace_json_with_lifetimes(&renamed.traces, &renamed.lifetimes);
    let doc = dv_bench::json::parse(&json).expect("chrome trace JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    let mut begin_versions: Vec<u64> = Vec::new();
    for e in events {
        if e.get("ph").and_then(|v| v.as_str()) == Some("b") {
            let args = e.get("args").expect("live-range begin carries args");
            assert!(args.get("bytes").and_then(|v| v.as_u64()).is_some());
            begin_versions.push(
                args.get("version")
                    .and_then(|v| v.as_u64())
                    .expect("live-range begin carries its version"),
            );
        }
    }
    let ranges: usize = renamed.lifetimes.iter().map(|l| l.ranges.len()).sum();
    assert_eq!(begin_versions.len(), ranges, "one begin event per range");
    assert_eq!(
        begin_versions.iter().max().copied(),
        Some(max_version),
        "the exported versions must match the recorded ones"
    );
}

/// RAW flow arrows describe *dataflow*, which renaming never touches:
/// on the same program, every traced instruction records the same RAW
/// producer with renaming on and off — only the issue timings move.
#[test]
fn raw_flow_arrows_are_invariant_under_renaming() {
    let [(_, renamed), (_, norename), _] = renaming_case();
    assert_eq!(renamed.traces.len(), norename.traces.len());
    for (tr, tn) in renamed.traces.iter().zip(&norename.traces) {
        assert_eq!(
            tr.events.len(),
            tn.events.len(),
            "same program, same events"
        );
        for (er, en) in tr.events.iter().zip(&tn.events) {
            assert_eq!(
                (er.program, er.pc, &er.mnemonic, er.dep),
                (en.program, en.pc, &en.mnemonic, en.dep),
                "renaming moved a RAW flow arrow"
            );
        }
    }
}

/// Negative path, pinned at a forced 16 KiB UB: when the scratchpad
/// cannot hold two live versions of a span, the rotation is refused
/// (typed, counted) and the writer falls back to the full WAR/WAW stall
/// — never silent corruption, and never a slower schedule than the
/// rename-less machine.
#[test]
fn rotation_refuses_cleanly_when_capacity_is_tight() {
    // 96x96 K2S2 forward at 16 KiB: the single-slot plan leaves too
    // little headroom, so every opportunistic rotation is refused.
    // 48x48 K3S2: headroom admits some rotations and refuses others.
    for (h, w, params, expect_renames) in [
        (96usize, 96usize, PoolParams::K2S2, false),
        (48, 48, PoolParams::K3S2, true),
    ] {
        let input =
            Nchw::from_fn(1, 16, h, w, |_, c, y, x| det(23, c * h * w + y * w + x)).to_nc1hwc0();
        let want = reference::maxpool_forward(&input, &params).unwrap();
        let mut cycles = Vec::new();
        for cost in [
            CostModel::ascend910_like(),
            CostModel::dual_pipe_no_rename(),
        ] {
            let mut chip = Chip::new(1, cost);
            chip.caps.ub = 16384;
            let engine = PoolingEngine::new(chip).with_rotation_planning(true);
            let (out, run) = engine
                .maxpool_forward(&input, params, ForwardImpl::Im2col)
                .expect("forward");
            assert_eq!(
                out.data(),
                want.data(),
                "{h}x{w} {params:?}: a refused rotation must never corrupt results"
            );
            if cost.rename {
                assert!(
                    run.total.rename_denied > 0,
                    "{h}x{w} {params:?}: the tight UB must refuse rotations"
                );
                assert_eq!(
                    run.total.renames > 0,
                    expect_renames,
                    "{h}x{w} {params:?}: unexpected grant pattern"
                );
            } else {
                assert_eq!(run.total.renames, 0);
                assert_eq!(run.total.rename_denied, 0, "only the renamer tries");
            }
            cycles.push(run.cycles);
        }
        assert!(
            cycles[0] <= cycles[1],
            "{h}x{w} {params:?}: falling back to the stall must not beat-miss \
             the rename-less schedule ({} > {})",
            cycles[0],
            cycles[1]
        );
    }
}

/// The simulator is deterministic in both issue models: running the same
/// workload twice — on the same engine, and on a `Chip` clone — yields
/// identical traces (starts, stalls, deps included), identical counters,
/// and identical stall totals.
#[test]
fn runs_are_deterministic_across_reruns_and_chip_clones() {
    let input =
        Nchw::from_fn(1, 32, 21, 21, |_, c, h, w| det(11, c * 441 + h * 21 + w)).to_nc1hwc0();
    let params = PoolParams::K3S2;

    for cost in [CostModel::ascend910_like(), CostModel::single_issue()] {
        let engine = PoolingEngine::new(Chip::new(4, cost)).with_trace(TraceConfig::ON);
        let cloned = PoolingEngine::new(engine.chip.clone()).with_trace(TraceConfig::ON);

        let (out_a, run_a) = engine
            .maxpool_forward(&input, params, ForwardImpl::Im2col)
            .unwrap();
        let (out_b, run_b) = engine
            .maxpool_forward(&input, params, ForwardImpl::Im2col)
            .unwrap();
        let (out_c, run_c) = cloned
            .maxpool_forward(&input, params, ForwardImpl::Im2col)
            .unwrap();

        for (label, out, run) in [("rerun", &out_b, &run_b), ("clone", &out_c, &run_c)] {
            let model = cost.issue_model;
            assert_eq!(out_a.data(), out.data(), "{model:?}/{label}: outputs");
            assert_eq!(run_a.total, run.total, "{model:?}/{label}: counters");
            assert_eq!(run_a.cycles, run.cycles, "{model:?}/{label}: cycles");
            assert_eq!(
                run_a.total.stall_cycles, run.total.stall_cycles,
                "{model:?}/{label}: stall cycles"
            );
            assert_eq!(
                run_a.traces.len(),
                run.traces.len(),
                "{model:?}/{label}: trace count"
            );
            for (ta, tb) in run_a.traces.iter().zip(&run.traces) {
                assert_eq!(ta.core, tb.core, "{model:?}/{label}: core ids");
                assert_eq!(ta.events, tb.events, "{model:?}/{label}: trace events");
            }
        }
    }
}
