//! Robustness: user-facing error messages and floating-point
//! special-value behaviour across the whole stack.

use davinci_pooling::prelude::*;
use davinci_pooling::tensor::reference;

// ---------------------------------------------------------------------
// error display surfaces
// ---------------------------------------------------------------------

#[test]
fn shape_errors_render_helpfully() {
    use davinci_pooling::tensor::ShapeError;
    let e = PoolParams::K3S2.out_dims(2, 2).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("kernel extent 3"), "{msg}");
    assert!(msg.contains("exceeds"), "{msg}");
    let e = ShapeError::DataLength {
        expected: 10,
        got: 7,
    };
    assert!(e.to_string().contains("data length 7"));
}

#[test]
fn isa_errors_render_helpfully() {
    use davinci_pooling::isa::{Addr, Instr, Mask, VectorInstr, VectorOp};
    let bad = Instr::Vector(VectorInstr::unit_stride(
        VectorOp::Add,
        Addr::gm(0),
        Addr::ub(0),
        Addr::ub(0),
        Mask::FULL,
        1,
    ));
    let msg = bad.validate().unwrap_err().to_string();
    assert!(msg.contains("vector"), "{msg}");
    assert!(msg.contains("GM"), "{msg}");
}

#[test]
fn sim_errors_render_helpfully() {
    use davinci_pooling::isa::BufferId;
    use davinci_pooling::sim::{BufferSet, Capacities};
    let b = BufferSet::new(Capacities::ASCEND910, 16);
    let msg = b.read_f16(BufferId::Gm, 64).unwrap_err().to_string();
    assert!(msg.contains("out of bounds"), "{msg}");
    assert!(msg.contains("GM"), "{msg}");
    let msg = b.read_f16(BufferId::Ub, 1).unwrap_err().to_string();
    assert!(msg.contains("misaligned"), "{msg}");
}

#[test]
fn engine_errors_render_helpfully() {
    let eng = PoolingEngine::ascend910();
    let input = Nc1hwc0::zeros(1, 1, 2, 2);
    let err = eng
        .maxpool_forward(&input, PoolParams::K3S2, ForwardImpl::Im2col)
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("lowering"), "{msg}");
}

#[test]
fn decode_errors_render_helpfully() {
    use davinci_pooling::isa::Program;
    let msg = Program::from_bytes(b"oops").unwrap_err().to_string();
    assert!(msg.contains("magic"), "{msg}");
}

// ---------------------------------------------------------------------
// floating-point special values through the full simulated stack
// ---------------------------------------------------------------------

fn special_input() -> Nc1hwc0 {
    // a tensor salted with NaN, +-inf, -0.0 and subnormals
    Nc1hwc0::from_fn(1, 1, 9, 9, |_, _, h, w, c0| match (h * 9 + w + c0) % 9 {
        0 => F16::NAN,
        1 => F16::INFINITY,
        2 => F16::NEG_INFINITY,
        3 => F16::NEG_ZERO,
        4 => F16::MIN_POSITIVE_SUBNORMAL,
        5 => F16::MAX,
        6 => F16::MIN,
        7 => F16::from_f32(1.5),
        _ => F16::from_f32(-2.25),
    })
}

#[test]
fn maxpool_with_special_values_matches_reference() {
    // hardware-max semantics (NaN ignored, -0 < +0) must match the
    // reference bit-for-bit for every implementation
    let input = special_input();
    let params = PoolParams::K3S2;
    let want = reference::maxpool_forward(&input, &params).unwrap();
    let eng = PoolingEngine::ascend910();
    for impl_ in [
        ForwardImpl::Standard,
        ForwardImpl::Im2col,
        ForwardImpl::Expansion,
        ForwardImpl::XYSplit,
    ] {
        let (got, _) = eng.maxpool_forward(&input, params, impl_).unwrap();
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{impl_:?} element {i}");
        }
    }
}

#[test]
fn avgpool_with_infinities_matches_reference() {
    // inf + finite = inf; inf + (-inf) = NaN — whatever the semantics,
    // simulated and reference paths must agree bit-for-bit
    let input = special_input();
    let params = PoolParams::K2S2;
    let want = reference::avgpool_forward(&input, &params).unwrap();
    let eng = PoolingEngine::ascend910();
    for impl_ in [ForwardImpl::Standard, ForwardImpl::Im2col] {
        let (got, _) = eng.avgpool_forward(&input, params, impl_).unwrap();
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{impl_:?} element {i}");
        }
    }
}

#[test]
fn backward_with_special_gradients_matches_reference() {
    let input = special_input();
    let params = PoolParams::K3S2;
    let mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
    let (oh, ow) = params.out_dims(9, 9).unwrap();
    let grads = Nc1hwc0::from_fn(1, 1, oh, ow, |_, _, h, w, c0| match (h + w + c0) % 5 {
        0 => F16::INFINITY,
        1 => F16::NEG_ZERO,
        2 => F16::MIN_POSITIVE_SUBNORMAL,
        _ => F16::from_f32(2.0),
    });
    let want = reference::maxpool_backward(&mask, &grads, &params, 9, 9).unwrap();
    let eng = PoolingEngine::ascend910();
    for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
        let (got, _) = eng
            .maxpool_backward(&mask, &grads, params, 9, 9, merge)
            .unwrap();
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{merge:?} element {i}");
        }
    }
}

#[test]
fn relu_with_special_values() {
    let input = special_input();
    let eng = PoolingEngine::ascend910();
    let (out, _) = eng.relu(&input).unwrap();
    for (got, x) in out.data().iter().zip(input.data()) {
        let want = x.max(F16::ZERO);
        assert_eq!(got.to_bits(), want.to_bits(), "relu({x:?})");
    }
    // spot-check semantics: NaN -> 0 is NOT what hardware max does; it
    // returns the non-NaN operand, which is 0 here
    assert_eq!(F16::NAN.max(F16::ZERO), F16::ZERO);
    // -0.0 relu's to +0.0 under totalOrder max
    assert_eq!(F16::NEG_ZERO.max(F16::ZERO), F16::ZERO);
}
