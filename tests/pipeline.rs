//! Cross-crate integration: a convolution layer (Cube Unit) feeding a
//! pooling layer (Vector Unit) with a training-direction backward pass —
//! conv -> maxpool(+argmax) -> backward — everything simulated, everything
//! checked against the golden references.

use davinci_pooling::prelude::*;
use davinci_pooling::tensor::reference;

fn det(seed: usize, i: usize) -> F16 {
    F16::from_f32(((seed * 31 + i * 7) % 13) as f32 * 0.25 - 1.5)
}

#[test]
fn conv_then_pool_then_backward() {
    // --- layer 1: convolution on the Cube Unit ---------------------
    let image = Nchw::from_fn(1, 16, 21, 21, |_, c, h, w| det(1, c * 441 + h * 21 + w));
    let kernels = Nchw::from_fn(32, 16, 3, 3, |m, c, h, w| {
        det(2, m * 144 + c * 9 + h * 3 + w)
    });
    let conv_params = PoolParams::new((3, 3), (1, 1));

    let (feature, conv_run) =
        davinci_pooling::conv::run_conv2d(&image, &kernels, &conv_params).expect("conv");
    let want_feature = reference::conv2d_direct(&image, &kernels, &conv_params).unwrap();
    assert_eq!(feature, want_feature, "conv layer output");
    assert!(conv_run.total.issues_of("cube_mmad") > 0);

    // --- layer 2: maxpool on the Vector Unit, accelerated path -----
    let pool_in = feature.to_nc1hwc0();
    let pool_params = PoolParams::K3S2;
    let engine = PoolingEngine::ascend910();

    let (pooled, mask, _) = engine
        .maxpool_forward_with_argmax(&pool_in, pool_params, ForwardImpl::Im2col)
        .expect("pool forward");
    let (want_pooled, want_mask) =
        reference::maxpool_forward_with_argmax(&pool_in, &pool_params).unwrap();
    assert_eq!(pooled.data(), want_pooled.data(), "pool output");
    assert_eq!(mask.data(), want_mask.data(), "argmax mask");

    // --- backward through the pool, accelerated merge --------------
    let grads = Nc1hwc0::from_fn(1, pool_in.c1, pooled.h, pooled.w, |_, c1, h, w, c0| {
        F16::from_f32(((c1 + h * 2 + w * 3 + c0) % 5) as f32)
    });
    let (dx, bwd_run) = engine
        .maxpool_backward(
            &mask,
            &grads,
            pool_params,
            pool_in.h,
            pool_in.w,
            MergeImpl::Col2Im,
        )
        .expect("pool backward");
    let want_dx =
        reference::maxpool_backward(&want_mask, &grads, &pool_params, pool_in.h, pool_in.w)
            .unwrap();
    assert_eq!(dx.data(), want_dx.data(), "input gradients");
    assert!(bwd_run.total.issues_of("col2im") > 0, "used Col2Im");
}

#[test]
fn both_paths_agree_end_to_end() {
    // Baseline and accelerated paths must agree on every intermediate
    // tensor of the forward+backward pipeline.
    let input =
        Nchw::from_fn(1, 48, 25, 25, |_, c, h, w| det(3, c * 625 + h * 25 + w)).to_nc1hwc0();
    let params = PoolParams::K3S2;
    let engine = PoolingEngine::ascend910();

    let (out_b, mask_b, run_b) = engine
        .maxpool_forward_with_argmax(&input, params, ForwardImpl::Standard)
        .unwrap();
    let (out_a, mask_a, run_a) = engine
        .maxpool_forward_with_argmax(&input, params, ForwardImpl::Im2col)
        .unwrap();
    assert_eq!(out_b.data(), out_a.data());
    assert_eq!(mask_b.data(), mask_a.data());
    assert!(run_a.cycles < run_b.cycles, "accelerated path is faster");

    let grads = Nc1hwc0::from_fn(1, input.c1, out_a.h, out_a.w, |_, c1, h, w, c0| {
        F16::from_f32(((c1 * 7 + h + w * 2 + c0) % 6) as f32)
    });
    let (dx_b, brun_b) = engine
        .maxpool_backward(&mask_a, &grads, params, 25, 25, MergeImpl::VAdd)
        .unwrap();
    let (dx_a, brun_a) = engine
        .maxpool_backward(&mask_a, &grads, params, 25, 25, MergeImpl::Col2Im)
        .unwrap();
    assert_eq!(dx_b.data(), dx_a.data());
    assert!(brun_a.cycles < brun_b.cycles, "Col2Im merge is faster");
}

#[test]
fn avgpool_training_pipeline() {
    let input =
        Nchw::from_fn(1, 32, 19, 19, |_, c, h, w| det(5, c * 361 + h * 19 + w)).to_nc1hwc0();
    let params = PoolParams::K3S2;
    let engine = PoolingEngine::ascend910();

    let (out, _) = engine
        .avgpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    let want = reference::avgpool_forward(&input, &params).unwrap();
    assert_eq!(out.data(), want.data());

    let grads = Nc1hwc0::from_fn(1, input.c1, out.h, out.w, |_, _, h, w, c0| {
        F16::from_f32(((h + w + c0) % 4) as f32)
    });
    let (dx, _) = engine
        .avgpool_backward(&grads, params, 19, 19, MergeImpl::Col2Im)
        .unwrap();
    let want_dx = reference::avgpool_backward(&grads, &params, 19, 19).unwrap();
    assert_eq!(dx.data(), want_dx.data());
}
